//! Three-thread concurrent testing — the §6 "Testing Thread Count"
//! extension.
//!
//! The paper notes that some bugs need three or more threads and that
//! "Snowboard should apply to input spaces of more dimensions, e.g., with
//! PMCs of 1 shared write with 2 reads". This module implements exactly
//! that shape: a [`TriplePmc`] joins two identified PMCs that share the
//! same write side, yielding a concurrent test of one writer and two
//! readers whose interleavings are explored with the union of both PMCs'
//! scheduling hints.
//!
//! This also reproduces the paper's #12 case-study observation that the
//! l2tp bug is an easy denial-of-service amplifier: "a massive number of
//! user processes requesting the same tunnel ID" all race on the same
//! publication window — with two readers, *either* can dereference the
//! uninitialized socket, roughly doubling the per-trial exposure odds.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sb_detect::Finding;
use sb_kernel::{BootedKernel, Program};
use sb_vmm::sched::SnowboardSched;
use sb_vmm::Executor;

use crate::error::{Error, SbResult};
use crate::pmc::{PmcId, PmcSet};

/// Two PMCs sharing a write side: one shared write, two reads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TriplePmc {
    /// First member (defines the shared write side).
    pub a: PmcId,
    /// Second member (same write key, its own read side).
    pub b: PmcId,
}

/// Finds all write-sharing PMC pairs — the 3-thread candidate space.
///
/// The quadratic-in-practice blowup the paper warns about ("the input
/// space dimension becomes cubic") is tamed the same way: group by write
/// key first, pair within groups only.
pub fn shared_write_triples(set: &PmcSet) -> Vec<TriplePmc> {
    use std::collections::HashMap;
    let mut by_write: HashMap<crate::pmc::SideKey, Vec<PmcId>> = HashMap::new();
    for (id, p) in set.pmcs.iter().enumerate() {
        by_write.entry(p.key.w).or_default().push(id as PmcId);
    }
    let mut out = Vec::new();
    let mut groups: Vec<(crate::pmc::SideKey, Vec<PmcId>)> = by_write.into_iter().collect();
    groups.sort_by_key(|(k, _)| (k.ins.0, k.addr, k.len, k.value));
    for (_, ids) in groups {
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                // Distinct read sides only: same-read pairs add nothing.
                let (pa, pb) = (&set.pmcs[ids[i] as usize], &set.pmcs[ids[j] as usize]);
                if pa.key.r != pb.key.r {
                    out.push(TriplePmc { a: ids[i], b: ids[j] });
                }
            }
        }
    }
    out
}

/// Outcome of one three-thread concurrent test.
#[derive(Clone, Debug)]
pub struct TripleOutcome {
    /// The triple under test.
    pub triple: TriplePmc,
    /// (writer, reader1, reader2) corpus test ids.
    pub tests: (u32, u32, u32),
    /// Trials executed.
    pub trials_run: u32,
    /// Distinct findings.
    pub findings: Vec<Finding>,
    /// Trial index of the first finding.
    pub first_finding_trial: Option<u32>,
    /// Total engine steps.
    pub steps: u64,
}

/// Executes one writer + two readers under Algorithm 2 with the union of
/// both PMCs' hints.
#[allow(clippy::too_many_arguments)]
pub fn test_triple(
    exec: &mut Executor,
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    triple: TriplePmc,
    seed: u64,
    trials: u32,
    stop_on_finding: bool,
) -> SbResult<TripleOutcome> {
    test_triple_traced(
        exec,
        booted,
        corpus,
        set,
        triple,
        seed,
        trials,
        stop_on_finding,
        &sb_obs::Tracer::disabled(),
    )
}

/// [`test_triple`], counting executed trials as `multi.trials` on `tracer`.
#[allow(clippy::too_many_arguments)]
pub fn test_triple_traced(
    exec: &mut Executor,
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    triple: TriplePmc,
    seed: u64,
    trials: u32,
    stop_on_finding: bool,
    tracer: &sb_obs::Tracer,
) -> SbResult<TripleOutcome> {
    assert!(exec.vcpus() >= 3, "three-thread testing needs >=3 vCPUs");
    let pa = set.get(triple.a);
    let pb = set.get(triple.b);
    let mut rng = StdRng::seed_from_u64(seed);
    let (w1, r1) = *pa
        .pairs
        .choose(&mut rng)
        .ok_or(Error::EmptyPmc { pmc: triple.a })?;
    let (_w2, r2) = *pb
        .pairs
        .choose(&mut rng)
        .ok_or(Error::EmptyPmc { pmc: triple.b })?;
    let fetch = |test: u32| -> SbResult<Program> {
        corpus.get(test as usize).cloned().ok_or(Error::BadTestId {
            test,
            corpus: corpus.len(),
        })
    };
    let writer = fetch(w1)?;
    let reader1 = fetch(r1)?;
    let reader2 = fetch(r2)?;
    let mut sched = SnowboardSched::new(seed, pa.hints().into_iter().chain(pb.hints()));
    let mut out = TripleOutcome {
        triple,
        tests: (w1, r1, r2),
        trials_run: 0,
        findings: Vec::new(),
        first_finding_trial: None,
        steps: 0,
    };
    let mut dedup = std::collections::HashSet::new();
    for trial in 0..trials {
        sched.begin_trial(seed.wrapping_add(u64::from(trial)));
        let r = exec.try_run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(writer.clone()),
                booted.kernel.process_job(reader1.clone()),
                booted.kernel.process_job(reader2.clone()),
            ],
            &mut sched,
        )?;
        out.trials_run += 1;
        out.steps += r.report.steps;
        let mut found_new = false;
        for f in sb_detect::analyze_traced(&r.report, tracer) {
            if dedup.insert(f.dedup_key()) {
                out.findings.push(f);
                found_new = true;
            }
        }
        if found_new && out.first_finding_trial.is_none() {
            out.first_finding_trial = Some(trial);
        }
        if found_new && stop_on_finding {
            break;
        }
    }
    tracer.count(sb_obs::keys::MULTI_TRIALS, u64::from(out.trials_run));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmc::{Pmc, PmcKey, SideKey};
    use sb_vmm::site;

    fn side(name: &str, addr: u64, value: u64) -> SideKey {
        SideKey {
            ins: site!(name),
            addr,
            len: 8,
            value,
        }
    }

    #[test]
    fn triples_require_shared_write_and_distinct_reads() {
        let w = side("m:w", 0x10, 1);
        let set = PmcSet {
            pmcs: vec![
                Pmc { key: PmcKey { w, r: side("m:r1", 0x10, 0) }, df_leader: false, pairs: vec![(0, 1)] },
                Pmc { key: PmcKey { w, r: side("m:r2", 0x10, 2) }, df_leader: false, pairs: vec![(0, 2)] },
                Pmc { key: PmcKey { w: side("m:w2", 0x20, 1), r: side("m:r3", 0x20, 0) }, df_leader: false, pairs: vec![(0, 1)] },
                // Duplicate of the first read side: must not pair with it.
                Pmc { key: PmcKey { w, r: side("m:r1", 0x10, 0) }, df_leader: false, pairs: vec![(3, 1)] },
            ],
        };
        let triples = shared_write_triples(&set);
        // (0,1), (1,3) pair; (0,3) share the read side — excluded.
        assert_eq!(triples.len(), 2);
        for t in &triples {
            assert_eq!(set.get(t.a).key.w, set.get(t.b).key.w);
            assert_ne!(set.get(t.a).key.r, set.get(t.b).key.r);
        }
    }

    #[test]
    fn triples_are_deterministic() {
        let w = side("m:wd", 0x10, 1);
        let set = PmcSet {
            pmcs: (0..6)
                .map(|i| Pmc {
                    key: PmcKey { w, r: side(&format!("m:rd{i}"), 0x10, i) },
                    df_leader: false,
                    pairs: vec![(0, 1)],
                })
                .collect(),
        };
        assert_eq!(shared_write_triples(&set), shared_write_triples(&set));
        assert_eq!(shared_write_triples(&set).len(), 15);
    }
}
