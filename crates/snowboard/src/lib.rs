//! Snowboard: finding kernel concurrency bugs through systematic
//! inter-thread communication analysis — a Rust reproduction of the
//! SOSP 2021 paper.
//!
//! The pipeline mirrors Figure 2 of the paper:
//!
//! 1. **Sequential test generation and profiling** (§4.1) — a
//!    coverage-distilled corpus from [`sb_fuzz`], each test profiled from
//!    the boot snapshot ([`profile`]).
//! 2. **PMC identification** (§4.2, Algorithm 1) — [`pmc::identify`] finds
//!    every write/read pair with overlapping ranges and differing values.
//! 3. **PMC selection** (§4.3, Table 1) — [`cluster`] implements the eight
//!    clustering strategies; [`select`] orders clusters uncommon-first and
//!    picks exemplars.
//! 4. **Concurrent test execution** (§4.4, Algorithm 2) — [`campaign`]
//!    executes each exemplar's test pair under the PMC-hinted scheduler
//!    with the stock detectors from [`sb_detect`].
//!
//! [`baseline`] provides the Random/Duplicate pairing baselines,
//! [`metrics`] the §5 measurements, and [`triage`] the ground-truth
//! matching that stands in for the paper's manual inspection.
//!
//! Campaign execution is fault tolerant: per-job failures are typed
//! ([`error`]), bounded by a watchdog ([`watchdog`]), retried with
//! deterministic reseeds ([`retry`]), quarantined when permanent, and
//! periodically checkpointed for kill/resume ([`checkpoint`]); [`fault`]
//! provides deterministic fault injection for testing that machinery.
//! [`supervise`] extends the same guarantees across *process* boundaries:
//! the campaign can run as a supervised pool of worker processes speaking
//! the [`protocol`] wire format, surviving aborts, OOM kills, and wedged
//! workers that in-process catch-unwind cannot. [`fleet`] extends them
//! across *machine* boundaries: a TCP coordinator leases jobs to joining
//! workers with heartbeat eviction, exactly-once merging of late results,
//! and deterministic network fault injection, while keeping the merged
//! report bit-identical to a single-process run.
//!
//! # Examples
//!
//! ```no_run
//! use snowboard::{Pipeline, PipelineCfg};
//! use snowboard::cluster::Strategy;
//! use snowboard::select::ClusterOrder;
//! use sb_kernel::KernelConfig;
//!
//! let pipeline = Pipeline::prepare(KernelConfig::v5_12_rc3(), PipelineCfg::default());
//! let exemplars = pipeline.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
//! let report = pipeline.campaign(&exemplars, &Default::default()).expect("campaign");
//! println!("found: {:?}", report.bug_ids());
//! ```

pub mod baseline;
pub mod campaign;
pub mod checkpoint;
pub mod cluster;
pub mod diagnose;
pub mod error;
pub mod fault;
pub mod fleet;
pub mod metrics;
pub mod multi;
pub mod pmc;
pub mod profile;
pub mod protocol;
pub mod retry;
pub mod select;
pub mod supervise;
pub mod triage;
pub mod watchdog;

use sb_kernel::{boot, BootedKernel, KernelConfig, Program};

/// The hand-rolled u64-exact JSON codec now lives in `sb-obs` (it also
/// serializes trace events); re-exported so `snowboard::json` call sites
/// keep working.
pub use sb_obs::json;
pub use sb_obs::{keys as trace_keys, Tracer};

pub use campaign::{CampaignCfg, CampaignReport, QuarantineRecord};
pub use checkpoint::{Checkpoint, CheckpointCfg};
pub use cluster::Strategy;
pub use error::{Error, FailureKind, SbResult};
pub use fault::{FaultPlan, NetFaultPlan};
pub use fleet::{
    config_fingerprint, run_coordinator, run_join, FleetCfg, FleetWork, JoinCfg, JoinSummary,
};
pub use metrics::{FleetStats, StoreStats, SuperviseStats};
pub use pmc::{identify_sharded, IdentifyOpts, JoinReport, JoinState, Pmc, PmcId, PmcSet};
pub use profile::{SeqProfile, SharedAccessFilter};
pub use protocol::{
    read_frame, write_frame, JoinMsg, ProtocolError, ServeMsg, WorkerMsg, FLEET_PROTO_VERSION,
};
pub use retry::RetryPolicy;
pub use supervise::{run_supervised, run_worker_shard, SuperviseCfg, WorkerCfg};
pub use watchdog::JobBudget;

/// Configuration for pipeline preparation (stages 1–2).
#[derive(Clone, Debug)]
pub struct PipelineCfg {
    /// Fuzzing seed.
    pub seed: u64,
    /// Distilled corpus size target.
    pub corpus_target: usize,
    /// Fuzzing candidate budget.
    pub fuzz_budget: u64,
    /// Worker threads for profiling.
    pub workers: usize,
    /// Structured tracer; disabled by default ([`Tracer::disabled`]).
    pub tracer: Tracer,
}

impl Default for PipelineCfg {
    fn default() -> Self {
        PipelineCfg {
            seed: 2021,
            corpus_target: 120,
            fuzz_budget: 2_000,
            workers: 4,
            tracer: Tracer::disabled(),
        }
    }
}

/// The prepared pipeline: booted kernel, corpus, profiles, and PMC set.
pub struct Pipeline {
    /// The booted kernel and snapshot.
    pub booted: BootedKernel,
    /// The sequential test corpus (index = test id).
    pub corpus: Vec<Program>,
    /// Per-test memory-access profiles.
    pub profiles: Vec<SeqProfile>,
    /// The identified PMC universe.
    pub pmcs: PmcSet,
    /// Preparation statistics.
    pub stats: PrepStats,
}

/// Preparation-stage statistics (the §5.4 pipeline-performance numbers).
#[derive(Clone, Debug, Default)]
pub struct PrepStats {
    /// Fuzzing executions performed.
    pub fuzz_executed: u64,
    /// Corpus tests kept.
    pub corpus_kept: u64,
    /// Distinct coverage edges.
    pub edges: usize,
    /// Total shared accesses profiled.
    pub shared_accesses: usize,
    /// PMCs identified.
    pub pmcs_identified: usize,
    /// Wall time of corpus building.
    pub fuzz_time: std::time::Duration,
    /// Wall time of profiling.
    pub profile_time: std::time::Duration,
    /// Wall time of PMC identification.
    pub identify_time: std::time::Duration,
}

impl Pipeline {
    /// Runs stages 1–2: boot, fuzz a corpus, profile it, identify PMCs.
    pub fn prepare(config: KernelConfig, cfg: PipelineCfg) -> Self {
        let tracer = cfg.tracer.clone();
        let prep = tracer.span("prepare");
        let booted = boot(config);
        let t0 = std::time::Instant::now();
        let (corpus, fuzz_stats) = {
            let _s = prep.child("fuzz");
            sb_fuzz::build_corpus(&booted, cfg.seed, cfg.corpus_target, cfg.fuzz_budget)
        };
        let fuzz_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        let profiles = {
            let _s = prep.child("profile");
            profile::profile_corpus_traced(&booted, &corpus, cfg.workers, &tracer)
        };
        let profile_time = t1.elapsed();
        let t2 = std::time::Instant::now();
        let pmcs = {
            let _s = prep.child("identify");
            pmc::identify_traced(&profiles, &tracer)
        };
        let identify_time = t2.elapsed();
        tracer.count(trace_keys::PIPELINE_PROFILES, profiles.len() as u64);
        tracer.count(
            trace_keys::PIPELINE_SHARED_ACCESSES,
            profiles.iter().map(|p| p.accesses.len() as u64).sum(),
        );
        tracer.count(trace_keys::PIPELINE_PMCS, pmcs.len() as u64);
        let stats = PrepStats {
            fuzz_executed: fuzz_stats.executed,
            corpus_kept: fuzz_stats.kept,
            edges: fuzz_stats.edges,
            shared_accesses: profiles.iter().map(|p| p.accesses.len()).sum(),
            pmcs_identified: pmcs.len(),
            fuzz_time,
            profile_time,
            identify_time,
        };
        Pipeline {
            booted,
            corpus,
            profiles,
            pmcs,
            stats,
        }
    }

    /// Stage 3: ordered exemplars for one strategy.
    pub fn exemplars(&self, strategy: Strategy, order: select::ClusterOrder) -> Vec<PmcId> {
        self.exemplars_traced(strategy, order, &Tracer::disabled())
    }

    /// [`Pipeline::exemplars`] with selection metrics emitted to `tracer`.
    pub fn exemplars_traced(
        &self,
        strategy: Strategy,
        order: select::ClusterOrder,
        tracer: &Tracer,
    ) -> Vec<PmcId> {
        select::exemplars_traced(
            &self.pmcs,
            strategy,
            order,
            0xC1A5_5E00 ^ strategy as u64,
            &std::collections::HashSet::new(),
            tracer,
        )
    }

    /// Stage 4: run a campaign over an exemplar list.
    ///
    /// Per-job failures never surface here — they land in
    /// [`CampaignReport::quarantined`]; `Err` means a campaign-level
    /// problem (bad resume checkpoint, failed checkpoint write).
    pub fn campaign(&self, exemplars: &[PmcId], cfg: &CampaignCfg) -> SbResult<CampaignReport> {
        campaign::run_campaign(&self.booted, &self.corpus, &self.pmcs, exemplars, cfg)
    }

    /// Number of clusters each strategy induces (Table 3's "Exemplar PMCs"
    /// column).
    pub fn cluster_count(&self, strategy: Strategy) -> usize {
        cluster::cluster(&self.pmcs, strategy).len()
    }
}
