//! Behavioral tests of the clustering strategies on a *real* pipeline:
//! each Table 1 filter must select exactly the PMCs its intuition
//! describes, and the exemplar streams must honor cluster rarity.

use snowboard::cluster::{cluster, keys_of, Strategy};
use snowboard::select::{exemplars, order_clusters, ClusterOrder};
use snowboard::{Pipeline, PipelineCfg};

use sb_kernel::KernelConfig;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| {
        Pipeline::prepare(
            KernelConfig::v5_12_rc3(),
            PipelineCfg {
                seed: 13,
                corpus_target: 80,
                fuzz_budget: 900,
                workers: 4,
                ..PipelineCfg::default()
            },
        )
    })
}

#[test]
fn sch_null_selects_only_zero_writes() {
    let p = pipeline();
    for c in cluster(&p.pmcs, Strategy::SChNull) {
        for id in c.members {
            assert_eq!(
                p.pmcs.get(id).key.w.value,
                0,
                "S-CH-NULL must only keep all-zero writes"
            );
        }
    }
}

#[test]
fn sch_unaligned_selects_only_differing_ranges() {
    let p = pipeline();
    let mut total = 0;
    for c in cluster(&p.pmcs, Strategy::SChUnaligned) {
        for id in c.members {
            let k = p.pmcs.get(id).key;
            assert!(
                k.w.addr != k.r.addr || k.w.len != k.r.len,
                "S-CH-UNALIGNED member has identical ranges"
            );
            total += 1;
        }
    }
    assert!(total > 0, "the per-byte memcpys must produce unaligned PMCs");
}

#[test]
fn sch_double_selects_only_df_leaders() {
    let p = pipeline();
    let mut total = 0;
    for c in cluster(&p.pmcs, Strategy::SChDouble) {
        for id in c.members {
            assert!(p.pmcs.get(id).df_leader);
            total += 1;
        }
    }
    assert!(total > 0, "mount's double fetches must appear");
}

#[test]
fn smem_clusters_unify_distinct_instructions_on_one_region() {
    let p = pipeline();
    // Some S-MEM cluster must contain PMCs with different instruction
    // pairs — the strategy's entire point.
    let found = cluster(&p.pmcs, Strategy::SMem).into_iter().any(|c| {
        let mut pairs: Vec<(u64, u64)> = c
            .members
            .iter()
            .map(|id| {
                let k = p.pmcs.get(*id).key;
                (k.w.ins.0, k.r.ins.0)
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len() > 1
    });
    assert!(found, "expected a memory region written/read by several instruction pairs");
}

#[test]
fn uncommon_first_order_is_monotone_in_cluster_size() {
    let p = pipeline();
    let ordered = order_clusters(cluster(&p.pmcs, Strategy::SInsPair), ClusterOrder::UncommonFirst, 1);
    for w in ordered.windows(2) {
        assert!(w[0].len() <= w[1].len());
    }
}

#[test]
fn every_strategy_produces_testable_exemplars() {
    let p = pipeline();
    for strategy in snowboard::cluster::ALL_STRATEGIES {
        let picks = exemplars(&p.pmcs, strategy, ClusterOrder::UncommonFirst, 3, &Default::default());
        for id in &picks {
            assert!(
                !p.pmcs.get(*id).pairs.is_empty(),
                "{strategy}: exemplar without test pairs"
            );
        }
        // Consistency: the pick count equals the cluster count (no
        // exclusions were provided, and exemplars never repeat).
        let n_clusters = cluster(&p.pmcs, strategy).len();
        assert!(picks.len() <= n_clusters);
        if matches!(strategy, Strategy::SFull | Strategy::SCh | Strategy::SInsPair | Strategy::SMem) {
            assert_eq!(picks.len(), n_clusters, "{strategy}");
        }
    }
}

#[test]
fn strategy_keys_are_consistent_with_cluster_membership() {
    let p = pipeline();
    for strategy in snowboard::cluster::ALL_STRATEGIES {
        for c in cluster(&p.pmcs, strategy) {
            for id in &c.members {
                assert!(
                    keys_of(p.pmcs.get(*id), strategy).contains(&c.key),
                    "{strategy}: member {id} lacks its cluster key"
                );
            }
        }
    }
}

#[test]
fn pmc_universe_covers_every_buggy_subsystem() {
    // The corpus + PMC identification must reach every Table 2 channel
    // needed by the 5.12-rc3 bugs.
    let p = pipeline();
    for (wfn, rfn) in [
        ("list_add_rcu", "l2tp_tunnel_get"),            // #12
        ("configfs_detach", "configfs_lookup"),          // #11
        ("tty_port_open", "uart_do_autoconfig"),         // #14 (either order)
        ("snd_ctl_elem_add", "snd_ctl_elem_add"),        // #15
        ("cache_alloc_refill", "cache_alloc_refill"),    // #13
    ] {
        let found = snowboard::metrics::find_pmc_by_sites(&p.pmcs, wfn, rfn).is_some()
            || snowboard::metrics::find_pmc_by_sites(&p.pmcs, rfn, wfn).is_some();
        assert!(found, "missing PMC {wfn} <-> {rfn}");
    }
}
