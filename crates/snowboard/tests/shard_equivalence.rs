//! Equivalence tests over real fuzzed corpora: the sharded parallel join
//! must be bit-identical to the sequential Algorithm 1, and the incremental
//! resume path must cover the same PMC universe as a from-scratch rebuild.

use sb_kernel::{boot, KernelConfig};
use snowboard::pmc::{identify, identify_sharded, IdentifyOpts, JoinState, PmcKey, PmcSet};
use snowboard::profile::{profile_corpus, SeqProfile};

fn fuzzed_profiles(seed: u64) -> Vec<SeqProfile> {
    let booted = boot(KernelConfig::v5_12_rc3());
    let (corpus, _) = sb_fuzz::build_corpus(&booted, seed, 24, 360);
    assert!(corpus.len() >= 8, "seed {seed}: corpus too small ({})", corpus.len());
    profile_corpus(&booted, &corpus, 4)
}

/// Pairs retained per PMC are capped (join order decides which survive), so
/// equivalence holds only up to the cap. Mirrors `MAX_PAIRS_PER_PMC`.
const PAIR_CAP: usize = 32;

/// One PMC reduced for comparison: key, df flag, pair count, pair list.
type CanonicalPmc = (PmcKey, bool, usize, Vec<(u32, u32)>);

/// Order-independent view of a PMC set: sorted keys with sorted pair lists;
/// capped pair lists are compared by size only.
fn canonical(set: &PmcSet) -> Vec<CanonicalPmc> {
    let mut v: Vec<_> = set
        .pmcs
        .iter()
        .map(|p| {
            let mut pairs = p.pairs.clone();
            pairs.sort_unstable();
            if pairs.len() >= PAIR_CAP {
                pairs.clear();
            }
            (p.key, p.df_leader, p.pairs.len(), pairs)
        })
        .collect();
    v.sort_unstable_by_key(|(k, _, _, _)| {
        (k.w.ins.0, k.w.addr, k.w.len, k.w.value, k.r.ins.0, k.r.addr, k.r.len, k.r.value)
    });
    v
}

#[test]
fn sharded_equals_sequential_on_fuzzed_corpora() {
    // ISSUE acceptance: bit-identical output for >= 3 distinct fuzz seeds.
    for seed in [3u64, 17, 71] {
        let profiles = fuzzed_profiles(seed);
        let sequential = identify(&profiles);
        assert!(!sequential.pmcs.is_empty(), "seed {seed}: empty PMC universe");
        for shards in [2usize, 4] {
            let sharded = identify_sharded(&profiles, shards, 4);
            assert_eq!(
                sequential, sharded,
                "seed {seed}: {shards}-shard join diverged from sequential"
            );
        }
    }
}

#[test]
fn incremental_resume_covers_the_rebuild_universe() {
    let profiles = fuzzed_profiles(29);
    let split = profiles.len() / 2;
    let opts = IdentifyOpts::sharded(4, 4);

    // Batch 1 from scratch, then resume from its folded set and add batch 2.
    let mut first = JoinState::new();
    first.add_profiles(&profiles[..split], &opts);
    let mut resumed = JoinState::resume(&profiles[..split], first.into_set());
    resumed.add_profiles(&profiles[split..], &opts);

    let rebuilt = identify(&profiles);
    assert_eq!(
        canonical(&resumed.into_set()),
        canonical(&rebuilt),
        "incremental join diverged from full rebuild"
    );
}
