//! End-to-end pipeline tests: fuzz → profile → identify → cluster → select
//! → execute, asserting the pipeline finds planted bugs.

use snowboard::cluster::Strategy;
use snowboard::select::ClusterOrder;
use snowboard::{CampaignCfg, Pipeline, PipelineCfg};

use sb_kernel::KernelConfig;

fn small_cfg() -> PipelineCfg {
    PipelineCfg {
        seed: 7,
        corpus_target: 60,
        fuzz_budget: 600,
        workers: 4,
        ..PipelineCfg::default()
    }
}

#[test]
fn pipeline_identifies_known_channels() {
    let p = Pipeline::prepare(KernelConfig::v5_12_rc3(), small_cfg());
    assert!(p.pmcs.len() > 100, "expected a rich PMC universe, got {}", p.pmcs.len());
    // The l2tp publication channel from Figure 1 must be predicted.
    let hit = snowboard::metrics::find_pmc_by_sites(&p.pmcs, "list_add_rcu", "l2tp_tunnel_get");
    assert!(hit.is_some(), "l2tp publish/lookup PMC missing");
    // The slab counter channel (bug #13) is everywhere.
    let slab =
        snowboard::metrics::find_pmc_by_sites(&p.pmcs, "cache_alloc_refill", "cache_alloc_refill");
    assert!(slab.is_some(), "slab stats PMC missing");
}

#[test]
fn cluster_counts_are_ordered_like_table3() {
    let p = Pipeline::prepare(KernelConfig::v5_12_rc3(), small_cfg());
    let full = p.cluster_count(Strategy::SFull);
    let ch = p.cluster_count(Strategy::SCh);
    let ins = p.cluster_count(Strategy::SIns);
    let pair = p.cluster_count(Strategy::SInsPair);
    let dbl = p.cluster_count(Strategy::SChDouble);
    // Table 3's shape: S-FULL ≥ S-CH ≥ S-INS-PAIR ≥ S-INS; filters shrink.
    assert!(full >= ch, "S-FULL ({full}) < S-CH ({ch})");
    assert!(ch >= pair, "S-CH ({ch}) < S-INS-PAIR ({pair})");
    assert!(pair >= ins, "S-INS-PAIR ({pair}) < S-INS ({ins})");
    assert!(dbl <= ch, "filtered strategy bigger than its base");
    assert!(ins > 10, "S-INS should still have many clusters, got {ins}");
}

#[test]
fn sinspair_campaign_finds_panic_and_race_bugs() {
    let p = Pipeline::prepare(KernelConfig::v5_12_rc3(), small_cfg());
    let exemplars = p.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
    let cfg = CampaignCfg {
        seed: 11,
        trials_per_pmc: 24,
        max_tested_pmcs: 500,
        workers: 4,
        stop_on_finding: true,
        incidental: true,
        ..CampaignCfg::default()
    };
    let report = p.campaign(&exemplars, &cfg).expect("campaign");
    assert!(report.quarantined.is_empty(), "no job should fail: {:?}", report.quarantined);
    let bugs = report.bug_ids();
    // #13 (slab stats) is found by everything.
    assert!(bugs.contains(&13), "missing #13 in {bugs:?}");
    // The campaign must find several of the 5.12-rc3 bugs (#2, #11..#17).
    assert!(bugs.len() >= 4, "expected >=4 distinct bugs, got {bugs:?}");
    // And some tests exercised their predicted channels.
    assert!(report.accuracy() > 0.05, "accuracy {:.3} too low", report.accuracy());
}

#[test]
fn patched_kernel_yields_no_triaged_bugs() {
    let p = Pipeline::prepare(KernelConfig::v5_12_rc3().patched(), small_cfg());
    let exemplars = p.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
    let cfg = CampaignCfg {
        seed: 11,
        trials_per_pmc: 8,
        max_tested_pmcs: 200,
        workers: 4,
        stop_on_finding: true,
        incidental: false,
        ..CampaignCfg::default()
    };
    let report = p.campaign(&exemplars, &cfg).expect("campaign");
    assert!(
        report.bug_ids().is_empty(),
        "patched kernel reported {:?}",
        report.bug_ids()
    );
}

#[test]
fn campaign_repro_schedules_replay_their_findings() {
    // Every finding carries a recorded schedule; replaying it must
    // re-produce the same finding deterministically (§6).
    let p = Pipeline::prepare(KernelConfig::v5_12_rc3(), small_cfg());
    let exemplars = p.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
    let cfg = CampaignCfg {
        seed: 21,
        trials_per_pmc: 16,
        max_tested_pmcs: 120,
        workers: 2,
        stop_on_finding: true,
        incidental: false,
        ..CampaignCfg::default()
    };
    let report = p.campaign(&exemplars, &cfg).expect("campaign");
    let mut exec = sb_vmm::Executor::new(2);
    let mut replayed = 0;
    for o in report.outcomes.iter().filter(|o| o.repro_schedule.is_some()) {
        let schedule = o.repro_schedule.clone().unwrap();
        let mut replay = sb_vmm::replay::ReplaySched::new(schedule);
        let r = exec.run(
            p.booted.snapshot.clone(),
            vec![
                p.booted.kernel.process_job(p.corpus[o.pair.0 as usize].clone()),
                p.booted.kernel.process_job(p.corpus[o.pair.1 as usize].clone()),
            ],
            &mut replay,
        );
        let keys: std::collections::HashSet<String> = sb_detect::analyze(&r.report)
            .iter()
            .map(|f| f.dedup_key())
            .collect();
        for f in &o.findings {
            assert!(
                keys.contains(&f.dedup_key()),
                "replay lost finding {:?} for pair {:?}",
                f,
                o.pair
            );
        }
        replayed += 1;
        if replayed >= 10 {
            break;
        }
    }
    assert!(replayed >= 3, "expected several reproducible findings");
}

#[test]
fn baselines_find_the_easy_race_only_mostly() {
    let p = Pipeline::prepare(KernelConfig::v5_12_rc3(), small_cfg());
    let report = snowboard::baseline::run_baseline(
        &p.booted, &p.corpus,
        snowboard::baseline::Pairing::Duplicate,
        150, 4, 3, 4, true,
    );
    let bugs = report.bug_ids();
    assert!(bugs.contains(&13), "duplicate pairing should stumble into #13: {bugs:?}");
}
