//! Property-based tests of the PMC algebra: Algorithm 1's output
//! invariants, clustering-partition laws, and selection determinism.

use proptest::prelude::*;

use sb_vmm::access::{range_overlap, Access, AccessKind};
use sb_vmm::site::Site;
use snowboard::cluster::{cluster, keys_of, Strategy, ALL_STRATEGIES};
use snowboard::pmc::{df_leaders, identify, PmcId};
use snowboard::profile::SeqProfile;
use snowboard::select::{exemplars, ClusterOrder};

/// A tiny random access model: few sites, few addresses, small values —
/// dense enough that overlaps and PMCs actually happen.
fn arb_access() -> impl proptest::strategy::Strategy<Value = (u8, bool, u64, u8, u64)> {
    (
        0u8..6,          // site index
        proptest::bool::ANY, // write?
        0u64..6,         // address slot (8-byte spaced, plus jitter below)
        1u8..=8,         // length
        0u64..4,         // value
    )
}

fn build_profiles(tests: Vec<Vec<(u8, bool, u64, u8, u64)>>) -> Vec<SeqProfile> {
    tests
        .into_iter()
        .enumerate()
        .map(|(tid, accs)| SeqProfile {
            test: tid as u32,
            accesses: accs
                .into_iter()
                .enumerate()
                .map(|(i, (s, w, slot, len, val))| Access {
                    seq: i as u64,
                    thread: 0,
                    site: Site::intern(&format!("prop:site{s}")),
                    kind: if w { AccessKind::Write } else { AccessKind::Read },
                    addr: 0x2_0000 + slot * 4,
                    len,
                    value: val,
                    atomic: false,
                    locks: vec![],
                    rcu_depth: 0,
                })
                .collect(),
            steps: 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every identified PMC satisfies the §2.2 definition: a write and a
    /// read with overlapping ranges whose projected values differ.
    #[test]
    fn identified_pmcs_satisfy_definition(
        tests in proptest::collection::vec(
            proptest::collection::vec(arb_access(), 1..12), 1..6)
    ) {
        let profiles = build_profiles(tests);
        let set = identify(&profiles);
        for pmc in &set.pmcs {
            let o = range_overlap(pmc.key.w.addr, pmc.key.w.len, pmc.key.r.addr, pmc.key.r.len);
            prop_assert!(o.is_some(), "PMC sides must overlap");
            let (start, len) = o.unwrap();
            let proj = |value: u64, base: u64| {
                let raw = value >> ((start - base) * 8);
                if len >= 8 { raw } else { raw & ((1u64 << (u64::from(len) * 8)) - 1) }
            };
            prop_assert_ne!(
                proj(pmc.key.w.value, pmc.key.w.addr),
                proj(pmc.key.r.value, pmc.key.r.addr),
                "projected values must differ"
            );
            prop_assert!(!pmc.pairs.is_empty(), "every PMC has at least one test pair");
            for (w, r) in &pmc.pairs {
                prop_assert!((*w as usize) < profiles.len());
                prop_assert!((*r as usize) < profiles.len());
            }
        }
    }

    /// Identification is a pure function of the profiles.
    #[test]
    fn identification_is_deterministic(
        tests in proptest::collection::vec(
            proptest::collection::vec(arb_access(), 1..10), 1..5)
    ) {
        let profiles = build_profiles(tests);
        let a = identify(&profiles);
        let b = identify(&profiles);
        let keys = |s: &snowboard::PmcSet| s.pmcs.iter().map(|p| p.key).collect::<Vec<_>>();
        prop_assert_eq!(keys(&a), keys(&b));
    }

    /// Clustering laws: unfiltered strategies partition the PMC set (every
    /// PMC in ≥1 cluster; S-INS in exactly 2, others exactly 1); filtered
    /// strategies only ever shrink membership.
    #[test]
    fn clustering_partitions(
        tests in proptest::collection::vec(
            proptest::collection::vec(arb_access(), 1..12), 1..6)
    ) {
        let profiles = build_profiles(tests);
        let set = identify(&profiles);
        for strategy in ALL_STRATEGIES {
            let clusters = cluster(&set, strategy);
            let mut membership = vec![0usize; set.len()];
            for c in &clusters {
                prop_assert!(!c.is_empty());
                for id in &c.members {
                    membership[*id as usize] += 1;
                }
            }
            for (id, count) in membership.iter().enumerate() {
                let expected = keys_of(set.get(id as PmcId), strategy).len();
                prop_assert_eq!(
                    *count, expected,
                    "PMC {} under {:?}: in {} clusters, keyed {} times",
                    id, strategy, count, expected
                );
                match strategy {
                    Strategy::SIns => prop_assert!(*count == 2 || *count == 0),
                    Strategy::SFull | Strategy::SCh | Strategy::SInsPair | Strategy::SMem => {
                        prop_assert_eq!(*count, 1)
                    }
                    _ => prop_assert!(*count <= 1),
                }
            }
        }
    }

    /// S-FULL refines S-CH: PMCs sharing an S-FULL cluster always share an
    /// S-CH cluster.
    #[test]
    fn sfull_refines_sch(
        tests in proptest::collection::vec(
            proptest::collection::vec(arb_access(), 1..12), 1..6)
    ) {
        let profiles = build_profiles(tests);
        let set = identify(&profiles);
        let full = cluster(&set, Strategy::SFull);
        let ch_key = |id: PmcId| keys_of(set.get(id), Strategy::SCh);
        for c in &full {
            let first = ch_key(c.members[0]);
            for m in &c.members {
                prop_assert_eq!(ch_key(*m), first.clone());
            }
        }
    }

    /// Exemplar selection returns distinct PMCs, one per non-excluded
    /// cluster, deterministically.
    #[test]
    fn exemplar_selection_laws(
        tests in proptest::collection::vec(
            proptest::collection::vec(arb_access(), 1..12), 1..6),
        seed: u64,
    ) {
        let profiles = build_profiles(tests);
        let set = identify(&profiles);
        let picks = exemplars(&set, Strategy::SInsPair, ClusterOrder::UncommonFirst, seed, &Default::default());
        let picks2 = exemplars(&set, Strategy::SInsPair, ClusterOrder::UncommonFirst, seed, &Default::default());
        prop_assert_eq!(&picks, &picks2, "selection must be deterministic");
        let mut dedup = picks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), picks.len(), "no PMC picked twice");
        prop_assert!(picks.len() <= cluster(&set, Strategy::SInsPair).len());
    }
}

/// df_leader never marks a read that follows a write to the same range.
#[test]
fn df_leader_respects_writes_property() {
    use proptest::test_runner::{Config, TestRunner};
    let mut runner = TestRunner::new(Config::with_cases(128));
    runner
        .run(
            &proptest::collection::vec(arb_access(), 2..16),
            |accs| {
                let profiles = build_profiles(vec![accs]);
                let p = &profiles[0];
                for idx in df_leaders(p) {
                    let leader = &p.accesses[idx];
                    prop_assert_eq!(leader.kind, AccessKind::Read);
                    // There must exist a later read of the same range, same
                    // value, different site, with no intervening write.
                    let mut ok = false;
                    for later in &p.accesses[idx + 1..] {
                        if later.kind == AccessKind::Write
                            && range_overlap(later.addr, later.len, leader.addr, leader.len)
                                .is_some()
                        {
                            break;
                        }
                        if later.kind == AccessKind::Read
                            && later.addr == leader.addr
                            && later.len == leader.len
                        {
                            if later.site != leader.site && later.value == leader.value {
                                ok = true;
                            }
                            break;
                        }
                    }
                    prop_assert!(ok, "df_leader {idx} lacks a matching second fetch");
                }
                Ok(())
            },
        )
        .unwrap();
}
