//! Property tests for the fleet wire protocol: the frame decoder and the
//! message parsers must map *every* byte sequence a hostile or partitioned
//! peer can produce — truncated, oversized, interleaved with garbage, or
//! pure noise — to a typed [`ProtocolError`], never a panic, and must
//! round-trip everything the encoder emits.

use std::io::Cursor;

use proptest::prelude::*;

use snowboard::{read_frame, write_frame, JoinMsg, ProtocolError, ServeMsg};

/// Frame payloads exercising the interesting shapes: empty, embedded
/// newlines, non-ASCII, JSON-ish text, and plain noise.
fn arb_payload() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[ -~]{0,64}",                       // printable ASCII
        "\\PC{0,32}",                        // arbitrary non-control unicode
        "(\\{\"msg\":\"heartbeat\"\\}\n?){1,3}", // JSONL look-alikes with newlines
    ]
}

/// Reads frames until EOF or the first error, with a hard cap so a decoder
/// bug can never turn a property case into an infinite loop.
fn drain(bytes: &[u8]) -> (Vec<String>, Option<ProtocolError>) {
    let mut r = Cursor::new(bytes.to_vec());
    let mut frames = Vec::new();
    for _ in 0..1024 {
        match read_frame(&mut r) {
            Ok(Some(p)) => frames.push(p),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
    panic!("decoder failed to terminate on {} bytes", bytes.len());
}

proptest! {
    /// Whatever the encoder writes, the decoder reads back verbatim, in
    /// order, ending with a clean EOF at the frame boundary.
    #[test]
    fn frames_round_trip(payloads in prop::collection::vec(arb_payload(), 0..8)) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let (frames, err) = drain(&buf);
        prop_assert_eq!(err, None);
        prop_assert_eq!(frames, payloads);
    }

    /// Arbitrary bytes never panic the decoder: every outcome is a clean
    /// EOF, a decoded frame, or a typed error.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let (_frames, _err) = drain(&bytes);
    }

    /// Cutting a valid stream at any byte offset is either still clean
    /// (the cut landed on a frame boundary) or a typed error — a
    /// partition can sever a TCP stream anywhere.
    #[test]
    fn truncation_is_detected(
        payloads in prop::collection::vec(arb_payload(), 1..5),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let cut = cut.index(buf.len() + 1); // 0..=len: empty through intact
        let (frames, err) = drain(&buf[..cut]);
        prop_assert!(frames.len() <= payloads.len());
        for (got, want) in frames.iter().zip(&payloads) {
            prop_assert_eq!(got, want, "decoded frames must be unmangled prefixes");
        }
        match err {
            // A cut at a boundary decodes an intact prefix cleanly.
            None => prop_assert!(frames.len() <= payloads.len()),
            // Anywhere else must surface as a framing error, and decoding
            // must have stopped before inventing extra frames.
            Some(
                ProtocolError::Truncated { .. }
                | ProtocolError::BadHeader { .. }
                | ProtocolError::BadFrame { .. },
            ) => prop_assert!(frames.len() < payloads.len()),
            Some(other) => prop_assert!(false, "unexpected error on truncation: {other}"),
        }
    }

    /// A declared length beyond the frame cap is rejected as `Oversized`
    /// (or `BadHeader` once the digit count itself is absurd) without
    /// allocating the claimed buffer.
    #[test]
    fn oversized_lengths_are_rejected(extra in 1u64..u32::MAX as u64) {
        let len = snowboard::protocol::MAX_FRAME_LEN as u64 + extra;
        let bytes = format!("{len}\nx");
        let (frames, err) = drain(bytes.as_bytes());
        prop_assert!(frames.is_empty());
        prop_assert!(
            matches!(
                err,
                Some(ProtocolError::Oversized { .. } | ProtocolError::BadHeader { .. })
            ),
            "got {err:?}"
        );
    }

    /// Garbage interleaved *between* valid frames is caught at the point
    /// of injection: the frames before it decode verbatim, the stream
    /// errors at the splice, and nothing panics.
    #[test]
    fn interleaved_garbage_is_caught(
        before in prop::collection::vec(arb_payload(), 0..4),
        noise in prop::collection::vec(any::<u8>(), 1..64),
        after in prop::collection::vec(arb_payload(), 0..4),
    ) {
        let mut buf = Vec::new();
        for p in &before {
            write_frame(&mut buf, p).unwrap();
        }
        buf.extend_from_slice(&noise);
        for p in &after {
            write_frame(&mut buf, p).unwrap();
        }
        let (frames, _err) = drain(&buf);
        for (got, want) in frames.iter().zip(&before).take(before.len()) {
            prop_assert_eq!(got, want, "pre-splice frames must decode verbatim");
        }
        // The splice may happen to parse as valid framing (e.g. noise that
        // is itself digits+newline), so only the prefix is guaranteed;
        // what matters is typed-or-clean, which `drain` already enforced.
    }

    /// The message parsers never panic on arbitrary frame payloads; any
    /// rejection is the typed `BadMessage` (the only error a syntactically
    /// intact frame can produce).
    #[test]
    fn message_parsers_never_panic(payload in "\\PC{0,128}") {
        if let Err(e) = JoinMsg::parse_line(&payload) {
            prop_assert!(matches!(e, ProtocolError::BadMessage { .. }), "got {e:?}");
        }
        if let Err(e) = ServeMsg::parse_line(&payload) {
            prop_assert!(matches!(e, ProtocolError::BadMessage { .. }), "got {e:?}");
        }
    }

    /// Fleet messages that *do* render survive a full frame round trip:
    /// render → frame → unframe → parse is the identity.
    #[test]
    fn framed_messages_round_trip(proto in any::<u64>(), config in any::<u64>(), max in any::<usize>()) {
        let msgs = [
            JoinMsg::Join { proto, config },
            JoinMsg::Heartbeat,
            JoinMsg::Request { max },
            JoinMsg::Leaving { reason: format!("reason-{proto}") },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, &m.render()).unwrap();
        }
        let mut r = Cursor::new(buf);
        for m in &msgs {
            let payload = read_frame(&mut r).unwrap().expect("frame present");
            prop_assert_eq!(&JoinMsg::parse_line(&payload).unwrap(), m);
        }
        prop_assert_eq!(read_frame(&mut r).unwrap(), None);
    }
}
