//! Property test: the sorted-scan race detector is equivalent to a naive
//! quadratic reference implementation on random traces.

use proptest::prelude::*;

use sb_detect::race::{detect_races_windowed, RaceReport};
use sb_vmm::access::{Access, AccessKind};
use sb_vmm::mem::is_stack_addr;
use sb_vmm::site::Site;

/// Naive O(n²) reference: every pair, checked directly against the race
/// definition.
fn reference(trace: &[Access], window: u64) -> Vec<RaceReport> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for i in 0..trace.len() {
        for j in i + 1..trace.len() {
            let (a, b) = (&trace[i], &trace[j]);
            if is_stack_addr(a.addr) || is_stack_addr(b.addr) {
                continue;
            }
            let race = a.thread != b.thread
                && (a.kind.is_write() || b.kind.is_write())
                && !(a.atomic && b.atomic)
                && a.overlaps(b)
                && !a.shares_lock_with(b)
                && a.seq.abs_diff(b.seq) <= window;
            if race {
                let (w, o) = if a.kind.is_write() { (a, b) } else { (b, a) };
                let r = RaceReport {
                    write_site: w.site,
                    other_site: o.site,
                    addr: b.addr.max(a.addr).min(b.addr),
                    seqs: (a.seq, b.seq),
                };
                if seen.insert(r.pair_key()) {
                    out.push(r);
                }
            }
        }
    }
    out
}

fn arb_trace() -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (
            0usize..3,                     // thread
            0u8..8,                        // site index
            0u64..12,                      // addr slot (overlap-dense)
            1u8..=8,                       // len
            proptest::bool::ANY,           // write?
            proptest::bool::ANY,           // atomic?
            proptest::collection::vec(0u64..3, 0..2), // lock indices
        ),
        0..40,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (thread, s, slot, len, write, atomic, locks))| Access {
                seq: i as u64,
                thread,
                site: Site::intern(&format!("eq:site{s}")),
                kind: if write { AccessKind::Write } else { AccessKind::Read },
                addr: 0x2_0000 + slot * 4,
                len,
                value: 0,
                atomic,
                locks: locks.iter().map(|l| 0x9_0000 + l * 8).collect(),
                rcu_depth: 0,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sorted_scan_matches_reference(trace in arb_trace(), window in 0u64..50) {
        let fast = detect_races_windowed(&trace, window);
        let slow = reference(&trace, window);
        let key = |rs: &[RaceReport]| {
            let mut k: Vec<(Site, Site)> = rs.iter().map(RaceReport::pair_key).collect();
            k.sort_unstable();
            k
        };
        prop_assert_eq!(key(&fast), key(&slow));
    }
}
