//! Lockset-based data-race detector.
//!
//! Models the DataCollider-style runtime race detector the paper uses as an
//! oracle. Because the execution engine records the complete access trace —
//! including, for each access, the locks held and the RCU nesting — the
//! detector is a precise post-mortem lockset analysis:
//!
//! Two accesses race when they (1) come from different threads, (2) overlap
//! in memory, (3) include at least one write, (4) are not both marked
//! (`READ_ONCE`/`WRITE_ONCE`-style — marked pairs are intentional lockless
//! protocols), and (5) share no common lock. Kernel-stack addresses are
//! excluded, the same standard assumption the paper adopts (§4.1.1).

use serde::{Deserialize, Serialize};

use sb_vmm::access::Access;
use sb_vmm::mem::is_stack_addr;
use sb_vmm::site::Site;

/// One data race: an unordered pair of racing instruction sites.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    /// The writing site (either site when both write).
    pub write_site: Site,
    /// The other racing site.
    pub other_site: Site,
    /// Overlap address the race was observed on.
    pub addr: u64,
    /// Trace sequence numbers of the two accesses (diagnostics).
    pub seqs: (u64, u64),
}

impl RaceReport {
    /// Unordered site-pair key for deduplication.
    pub fn pair_key(&self) -> (Site, Site) {
        if self.write_site.0 <= self.other_site.0 {
            (self.write_site, self.other_site)
        } else {
            (self.other_site, self.write_site)
        }
    }
}

/// DataCollider's detection is *temporal*: it stalls a sampled access for a
/// short window and reports a race only if a conflicting access lands inside
/// that window. This constant models the stall window in trace steps — two
/// conflicting accesses further apart than this never collide "live" and are
/// not reported. This is what makes race detection interleaving-dependent
/// and why scheduling hints matter (§5.4).
pub const PROXIMITY_WINDOW: u64 = 8;

fn is_candidate(a: &Access) -> bool {
    !is_stack_addr(a.addr)
}

fn races(a: &Access, b: &Access, window: u64) -> bool {
    a.thread != b.thread
        && (a.kind.is_write() || b.kind.is_write())
        && !(a.atomic && b.atomic)
        && a.overlaps(b)
        && !a.shares_lock_with(b)
        && a.seq.abs_diff(b.seq) <= window
}

/// Scans a full execution trace for data races with the default
/// [`PROXIMITY_WINDOW`], deduplicated by unordered site pair.
pub fn detect_races(trace: &[Access]) -> Vec<RaceReport> {
    detect_races_windowed(trace, PROXIMITY_WINDOW)
}

/// Scans a full execution trace for data races whose conflicting accesses
/// occur within `window` trace steps of each other.
///
/// Complexity: the trace is sorted by address, then only accesses whose
/// ranges can overlap are compared — `O(n log n + k)` rather than the naive
/// quadratic scan.
pub fn detect_races_windowed(trace: &[Access], window: u64) -> Vec<RaceReport> {
    let mut sorted: Vec<&Access> = trace.iter().filter(|a| is_candidate(a)).collect();
    sorted.sort_by_key(|a| a.addr);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for i in 0..sorted.len() {
        let a: &Access = sorted[i];
        for b in sorted[i + 1..].iter().copied() {
            if b.addr >= a.end() {
                break;
            }
            if races(a, b, window) {
                let (w, o) = if a.kind.is_write() { (a, b) } else { (b, a) };
                let report = RaceReport {
                    write_site: w.site,
                    other_site: o.site,
                    addr: b.addr,
                    seqs: (a.seq, b.seq),
                };
                if seen.insert(report.pair_key()) {
                    out.push(report);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_vmm::access::AccessKind;
    use sb_vmm::mem::stack_base;
    use sb_vmm::site;

    fn acc(
        seq: u64,
        thread: usize,
        name: &str,
        kind: AccessKind,
        addr: u64,
        locks: Vec<u64>,
        atomic: bool,
    ) -> Access {
        Access {
            seq,
            thread,
            site: site!(name),
            kind,
            addr,
            len: 8,
            value: 0,
            atomic,
            locks,
            rcu_depth: 0,
        }
    }

    #[test]
    fn basic_write_read_race() {
        let t = vec![
            acc(0, 0, "rw:w", AccessKind::Write, 0x2000, vec![], false),
            acc(1, 1, "rw:r", AccessKind::Read, 0x2000, vec![], false),
        ];
        let races = detect_races(&t);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].write_site, site!("rw:w"));
    }

    #[test]
    fn common_lock_suppresses() {
        let t = vec![
            acc(0, 0, "cl:w", AccessKind::Write, 0x2000, vec![0x9000], false),
            acc(1, 1, "cl:r", AccessKind::Read, 0x2000, vec![0x9000], false),
        ];
        assert!(detect_races(&t).is_empty());
    }

    #[test]
    fn different_locks_still_race() {
        // The structure of bug #9: writer under RTNL, reader under RCU only.
        let t = vec![
            acc(0, 0, "dl:w", AccessKind::Write, 0x2000, vec![0x9000], false),
            acc(1, 1, "dl:r", AccessKind::Read, 0x2000, vec![0x9008], false),
        ];
        assert_eq!(detect_races(&t).len(), 1);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let t = vec![
            acc(0, 0, "rr:a", AccessKind::Read, 0x2000, vec![], false),
            acc(1, 1, "rr:b", AccessKind::Read, 0x2000, vec![], false),
        ];
        assert!(detect_races(&t).is_empty());
    }

    #[test]
    fn marked_pairs_are_exempt_but_mixed_is_not() {
        let both = vec![
            acc(0, 0, "mk:w", AccessKind::Write, 0x2000, vec![], true),
            acc(1, 1, "mk:r", AccessKind::Read, 0x2000, vec![], true),
        ];
        assert!(detect_races(&both).is_empty());
        let mixed = vec![
            acc(0, 0, "mx:w", AccessKind::Write, 0x2000, vec![], true),
            acc(1, 1, "mx:r", AccessKind::Read, 0x2000, vec![], false),
        ];
        assert_eq!(detect_races(&mixed).len(), 1);
    }

    #[test]
    fn same_thread_never_races() {
        let t = vec![
            acc(0, 0, "st:w", AccessKind::Write, 0x2000, vec![], false),
            acc(1, 0, "st:r", AccessKind::Read, 0x2000, vec![], false),
        ];
        assert!(detect_races(&t).is_empty());
    }

    #[test]
    fn partial_overlap_races() {
        // A 6-byte memcpy region written per byte vs an 8-byte read.
        let mut t = vec![acc(0, 1, "po:r", AccessKind::Read, 0x2000, vec![], false)];
        t.push(Access {
            seq: 1,
            thread: 0,
            site: site!("po:w"),
            kind: AccessKind::Write,
            addr: 0x2004,
            len: 1,
            value: 0,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        });
        assert_eq!(detect_races(&t).len(), 1);
    }

    #[test]
    fn non_overlapping_do_not_race() {
        let t = vec![
            acc(0, 0, "no:w", AccessKind::Write, 0x2000, vec![], false),
            acc(1, 1, "no:r", AccessKind::Read, 0x2010, vec![], false),
        ];
        assert!(detect_races(&t).is_empty());
    }

    #[test]
    fn stack_accesses_are_excluded() {
        let sp = stack_base(0) + 64;
        let t = vec![
            acc(0, 0, "sk:w", AccessKind::Write, sp, vec![], false),
            acc(1, 1, "sk:r", AccessKind::Read, sp, vec![], false),
        ];
        assert!(detect_races(&t).is_empty());
    }

    #[test]
    fn duplicate_site_pairs_dedup() {
        let mut t = Vec::new();
        for i in 0..10 {
            t.push(acc(2 * i, 0, "dd:w", AccessKind::Write, 0x2000, vec![], false));
            t.push(acc(2 * i + 1, 1, "dd:r", AccessKind::Read, 0x2000, vec![], false));
        }
        assert_eq!(detect_races(&t).len(), 1);
    }

    #[test]
    fn distant_conflicts_are_not_observed() {
        // DataCollider semantics: conflicting accesses that never come
        // close in time do not collide.
        let t = vec![
            acc(0, 0, "far:w", AccessKind::Write, 0x2000, vec![], false),
            acc(500, 1, "far:r", AccessKind::Read, 0x2000, vec![], false),
        ];
        assert!(detect_races(&t).is_empty());
        assert_eq!(detect_races_windowed(&t, 1000).len(), 1);
    }

    #[test]
    fn window_boundary_is_inclusive() {
        let t = vec![
            acc(0, 0, "bd:w", AccessKind::Write, 0x2000, vec![], false),
            acc(PROXIMITY_WINDOW, 1, "bd:r", AccessKind::Read, 0x2000, vec![], false),
        ];
        assert_eq!(detect_races(&t).len(), 1);
        let t2 = vec![
            acc(0, 0, "bd2:w", AccessKind::Write, 0x2000, vec![], false),
            acc(PROXIMITY_WINDOW + 1, 1, "bd2:r", AccessKind::Read, 0x2000, vec![], false),
        ];
        assert!(detect_races(&t2).is_empty());
    }

    #[test]
    fn write_write_races_are_reported() {
        let t = vec![
            acc(0, 0, "ww:a", AccessKind::Write, 0x2000, vec![], false),
            acc(1, 1, "ww:b", AccessKind::Write, 0x2000, vec![], false),
        ];
        assert_eq!(detect_races(&t).len(), 1);
    }
}
