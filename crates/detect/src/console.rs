//! Kernel console checker.
//!
//! The paper implements `is_bug` partly "by capturing guest-kernel console
//! output" (§4.4.1). This module scans console lines for the error classes
//! Table 2 reports: oopses, filesystem errors, block-layer IO errors, and
//! WARN splats.

use crate::Finding;

/// Substrings that mark a console line as an error finding (panics are
/// handled via the execution outcome, but their lines also match here when
/// scanning raw logs).
const ERROR_PATTERNS: &[&str] = &[
    "BUG:",
    "EXT4-fs error",
    "Blk_update_request: IO error",
    "WARNING:",
    "Oops:",
];

/// Returns true if `line` matches any error pattern.
pub fn is_error_line(line: &str) -> bool {
    ERROR_PATTERNS.iter().any(|p| line.contains(p))
}

/// Scans console lines, producing one finding per error line. `BUG:` lines
/// are classified as panics; the rest as console errors.
pub fn scan_console(lines: &[String]) -> Vec<Finding> {
    lines
        .iter()
        .filter(|l| is_error_line(l))
        .map(|l| {
            if l.contains("BUG:") {
                Finding::KernelPanic { msg: l.clone() }
            } else {
                Finding::ConsoleError { line: l.clone() }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_lines_are_flagged() {
        assert!(is_error_line("EXT4-fs error (device sda): bad header"));
        assert!(is_error_line("Blk_update_request: IO error, dev sda, sector 3"));
        assert!(is_error_line("BUG: kernel NULL pointer dereference"));
        assert!(is_error_line("WARNING: thread 0 exited holding lock 0x40"));
        assert!(!is_error_line("EXT4-fs (sda): mounted filesystem"));
    }

    #[test]
    fn scan_classifies_bug_lines_as_panics() {
        let lines = vec![
            "booted fine".to_owned(),
            "BUG: unable to handle page fault for address: 0x1100".to_owned(),
            "EXT4-fs error: checksum invalid".to_owned(),
        ];
        let findings = scan_console(&lines);
        assert_eq!(findings.len(), 2);
        assert!(matches!(findings[0], Finding::KernelPanic { .. }));
        assert!(matches!(findings[1], Finding::ConsoleError { .. }));
    }
}
