//! Bug oracles for concurrent executions.
//!
//! The paper wires "stock bug detectors" into the execution framework
//! (§3.1, §4.4.1): a kernel-console checker, a DataCollider-style data-race
//! detector, and liveness monitors. This crate implements them over the
//! engine's [`ExecReport`]s. The detectors are deliberately ignorant of the
//! planted-bug ground truth — triage against the registry happens downstream
//! (in `snowboard::triage`), mirroring the paper's separation between
//! detection and manual inspection.

pub mod console;
pub mod race;

use serde::{Deserialize, Serialize};

use sb_vmm::exec::{ExecReport, Outcome};

pub use console::scan_console;
pub use race::{detect_races, RaceReport};

/// One raw detector finding from a single execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Finding {
    /// The kernel panicked (oops / page fault).
    KernelPanic {
        /// The console line describing the panic.
        msg: String,
    },
    /// An error-class console line short of a panic (fs errors, IO errors,
    /// WARN splats).
    ConsoleError {
        /// The offending console line.
        line: String,
    },
    /// A data race between two instruction sites.
    DataRace {
        /// Site name of one access (the write, when only one side writes).
        write_site: String,
        /// Site name of the other access.
        other_site: String,
        /// Address the racing accesses overlapped on.
        addr: u64,
    },
    /// Every live thread blocked.
    Deadlock,
    /// The execution exceeded its liveness budget.
    Livelock,
}

impl Finding {
    /// A stable deduplication key: executions triggering the same underlying
    /// issue produce the same key.
    pub fn dedup_key(&self) -> String {
        match self {
            Finding::KernelPanic { msg } => format!("panic:{}", strip_numbers(msg)),
            Finding::ConsoleError { line } => format!("console:{}", strip_numbers(line)),
            Finding::DataRace {
                write_site,
                other_site,
                ..
            } => {
                // Unordered pair.
                let (a, b) = if write_site <= other_site {
                    (write_site, other_site)
                } else {
                    (other_site, write_site)
                };
                format!("race:{a}/{b}")
            }
            Finding::Deadlock => "deadlock".to_owned(),
            Finding::Livelock => "livelock".to_owned(),
        }
    }

    /// Stable short tag for the finding's kind (metrics labels).
    pub fn kind_tag(&self) -> &'static str {
        match self {
            Finding::KernelPanic { .. } => "panic",
            Finding::ConsoleError { .. } => "console",
            Finding::DataRace { .. } => "race",
            Finding::Deadlock => "deadlock",
            Finding::Livelock => "livelock",
        }
    }
}

/// Removes hex/decimal payloads from a console line so lines differing only
/// in addresses or counters dedup together.
fn strip_numbers(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_num = false;
    for c in s.chars() {
        if c.is_ascii_hexdigit() || c == 'x' && in_num {
            if !in_num {
                out.push('#');
                in_num = true;
            }
        } else {
            in_num = false;
            out.push(c);
        }
    }
    out
}

/// Runs every oracle over one execution report.
pub fn analyze(report: &ExecReport) -> Vec<Finding> {
    let mut findings = Vec::new();
    match &report.outcome {
        Outcome::Panic { msg } => findings.push(Finding::KernelPanic { msg: msg.clone() }),
        Outcome::Deadlock => findings.push(Finding::Deadlock),
        Outcome::Livelock => findings.push(Finding::Livelock),
        Outcome::Completed => {}
    }
    findings.extend(scan_console(&report.console));
    for race in detect_races(&report.trace) {
        findings.push(Finding::DataRace {
            write_site: race.write_site.display_name(),
            other_site: race.other_site.display_name(),
            addr: race.addr,
        });
    }
    findings
}

/// [`analyze`], counting raw (pre-dedup) detector hits as `detect.findings`
/// on `tracer`.
pub fn analyze_traced(report: &ExecReport, tracer: &sb_obs::Tracer) -> Vec<Finding> {
    let findings = analyze(report);
    tracer.count(sb_obs::keys::FINDINGS, findings.len() as u64);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keys_ignore_addresses() {
        let a = Finding::KernelPanic {
            msg: "BUG: kernel NULL pointer dereference, address: 0x10 at l2tp".into(),
        };
        let b = Finding::KernelPanic {
            msg: "BUG: kernel NULL pointer dereference, address: 0x58 at l2tp".into(),
        };
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn dedup_keys_are_unordered_for_races() {
        let a = Finding::DataRace {
            write_site: "w:x".into(),
            other_site: "r:y".into(),
            addr: 1,
        };
        let b = Finding::DataRace {
            write_site: "r:y".into(),
            other_site: "w:x".into(),
            addr: 99,
        };
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn distinct_findings_have_distinct_keys() {
        let a = Finding::Deadlock;
        let b = Finding::Livelock;
        assert_ne!(a.dedup_key(), b.dedup_key());
    }
}
