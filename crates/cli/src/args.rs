//! Hand-rolled argument parsing (no external dependencies).

use std::path::PathBuf;

use sb_kernel::{KernelConfig, KernelVersion};
use snowboard::cluster::Strategy;
use snowboard::{FaultPlan, NetFaultPlan};

/// Top-level usage text.
pub const USAGE: &str = "\
snowboard — find simulated-kernel concurrency bugs via PMC analysis

USAGE:
    snowboard <COMMAND> [OPTIONS]

COMMANDS:
    hunt          run the full pipeline and a campaign
    hunt serve    run a campaign as a fleet coordinator over TCP
    hunt join     join a fleet coordinator as a worker
    strategies    show per-strategy cluster counts for a corpus
    list-bugs     print the ground-truth issue registry (Table 2)
    repro         reproduce one known bug with its PMC-hinted schedule
    store stats   print profile/PMC store hit rate and segment sizes
    store fsck    verify store integrity (read-only); exits nonzero if dirty
    store repair  drop damaged records and truncate torn segment tails
    trace report  reconstruct stage timings and the funnel from a trace dir
    help          show this message

OPTIONS (hunt):
    --version <5.3.10|5.12-rc3>   kernel to test     [default: 5.12-rc3]
    --patched                     use the fully patched build
    --strategy <NAME>             clustering strategy [default: s-ins-pair]
                                  (s-full, s-ch, s-ch-null, s-ch-unaligned,
                                   s-ch-double, s-ins, s-ins-pair, s-mem)
    --seed <N>                    random seed        [default: 2021]
    --corpus <N>                  corpus size target [default: 100]
    --budget <N>                  max tested PMCs    [default: 400]
    --trials <N>                  trials per PMC     [default: 24]
    --workers <N>                 worker threads     [default: 4]
    --random-order                randomize cluster order
    --retries <N>                 attempts per job before quarantine [default: 3]
    --job-deadline <SECS>         per-job wall-clock watchdog [default: 60]
    --checkpoint <PATH>           write progress checkpoints to PATH
    --resume <PATH>               resume from a checkpoint written by --checkpoint
    --resume-or-fresh <PATH>      like --resume, but a corrupt or missing
                                  checkpoint warns and starts fresh
    --store <DIR>                 persist/reuse profiles and PMCs in DIR
    --no-cache                    with --store: write results but serve no reads
    --trace-dir <DIR>             write structured JSONL trace events to DIR
    --supervise                   run the campaign as separate worker
                                  processes, supervised with heartbeats,
                                  restart budgets, and crash quarantine
    --stop-file <PATH>            with --supervise: finish in-flight jobs,
                                  checkpoint, and exit 0 once PATH exists
    --heartbeat-ms <N>            with --supervise: kill and restart a worker
                                  heard from not at all for N ms
                                  [default: 10000]
    --fault-plan <SPEC>           inject scripted faults for testing, e.g.
                                  'panic=3;transient=1:2;abort=2;stall=5'
                                  (abort/exit/stall need --supervise)

OPTIONS (hunt serve), in addition to the hunt options:
    --listen <ADDR>               TCP address to listen on, e.g.
                                  127.0.0.1:7070 (required; port 0 picks a
                                  free port, printed on stderr)
    --lease-ms <N>                reclaim a worker's unfinished jobs N ms
                                  after leasing them [default: 30000]
    --batch <N>                   jobs granted per lease [default: 4]
    --crash-budget <N>            connection deaths charged to one job
                                  before it is quarantined [default: 2]
    --stop-file and --heartbeat-ms apply as under --supervise; the merged
    report is bit-identical to a plain hunt with the same flags.

OPTIONS (hunt join <ADDR>), in addition to the hunt options:
    --batch <N>                   jobs requested per lease [default: 4]
    --connect-retries <N>         consecutive failed connect attempts
                                  before giving up [default: 5]
    --net-faults <SPEC>           inject network faults, e.g.
                                  'drop=0:6;delay=1:50;garble=2:3'
                                  (also read from SB_NET_FAULTS)
    The campaign flags (--seed, --corpus, --budget, --trials, ...) must
    match the coordinator's: the handshake rejects a mismatch.

OPTIONS (strategies):   --version, --patched, --seed, --corpus
OPTIONS (repro):        --bug <1|2|3|4|11|12> (console-detectable bugs)
OPTIONS (store stats):  --store <DIR> (required)
OPTIONS (store fsck):   --store <DIR> (required)
OPTIONS (store repair): --store <DIR> (required)
OPTIONS (trace report): --trace-dir <DIR> (required)

EXIT CODES:
    0    success (including a graceful --stop-file shutdown)
    1    runtime failure: campaign error, unopenable store, dirty fsck,
         missing or unverifiable trace
    2    usage error: unknown command, option, or malformed value
    3    hunt completed, but one or more jobs were quarantined
";

/// Options for the `hunt` command.
#[derive(Clone, Debug, PartialEq)]
pub struct HuntOpts {
    /// Kernel configuration.
    pub config: KernelConfig,
    /// Clustering strategy.
    pub strategy: Strategy,
    /// Random seed.
    pub seed: u64,
    /// Corpus target size.
    pub corpus: usize,
    /// Max tested PMCs.
    pub budget: usize,
    /// Trials per PMC.
    pub trials: u32,
    /// Worker threads.
    pub workers: usize,
    /// Random cluster order instead of uncommon-first.
    pub random_order: bool,
    /// Attempts per job before quarantine.
    pub retries: u32,
    /// Per-job wall-clock deadline in seconds (0 = unbounded).
    pub job_deadline_secs: u64,
    /// Checkpoint file to write progress to.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint file to resume from.
    pub resume: Option<PathBuf>,
    /// With a resume path: tolerate a corrupt, truncated, or mismatched
    /// checkpoint by warning and starting fresh instead of aborting.
    pub resume_lenient: bool,
    /// Profile/PMC store directory; `None` runs fully in memory.
    pub store: Option<PathBuf>,
    /// With a store: disable cache reads (results are still written back).
    pub no_cache: bool,
    /// Directory to write structured JSONL trace events to; `None` disables
    /// tracing entirely (the near-no-op path).
    pub trace_dir: Option<PathBuf>,
    /// Run the campaign as supervised worker *processes* instead of the
    /// in-process thread pool.
    pub supervise: bool,
    /// With `--supervise`: graceful-shutdown trigger — finish in-flight
    /// jobs, save the checkpoint, and exit cleanly once this file exists.
    pub stop_file: Option<PathBuf>,
    /// With `--supervise`: a worker silent for this long is killed and
    /// restarted.
    pub heartbeat_ms: u64,
    /// Scripted fault injection (in-process faults everywhere; the
    /// abort/exit/stall process faults only under `--supervise`).
    pub fault_plan: FaultPlan,
    /// Hidden worker entrypoint `(shard, of)`: run one deterministic shard
    /// of the campaign and speak the worker protocol on stdout. Set only by
    /// the supervisor's re-exec; never by hand.
    pub worker_shard: Option<(usize, usize)>,
}

/// Options for `hunt serve` (fleet coordinator).
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOpts {
    /// The underlying campaign options.
    pub hunt: HuntOpts,
    /// TCP listen address.
    pub listen: String,
    /// Lease deadline in milliseconds.
    pub lease_ms: u64,
    /// Jobs granted per lease.
    pub batch: usize,
    /// Connection deaths charged to one job before quarantine.
    pub crash_budget: u32,
}

/// Options for `hunt join <addr>` (fleet worker).
#[derive(Clone, Debug, PartialEq)]
pub struct JoinOpts {
    /// The campaign options (must match the coordinator's).
    pub hunt: HuntOpts,
    /// Coordinator address.
    pub addr: String,
    /// Jobs requested per lease.
    pub batch: usize,
    /// Consecutive failed connect attempts before giving up.
    pub connect_retries: u32,
    /// Injected network faults (flag and `SB_NET_FAULTS` merged).
    pub net_faults: NetFaultPlan,
}

/// Parse-time sanity for the timing knobs shared by `--supervise` and the
/// fleet commands. `lease_ms`/`batch` are `None` for modes without those
/// flags. The lease deadline must exceed the worker heartbeat interval
/// (`heartbeat_ms / 4`): a shorter lease would expire between two
/// heartbeats of a perfectly healthy worker, reassigning every job it
/// holds.
pub fn validate_timing(
    heartbeat_ms: u64,
    lease_ms: Option<u64>,
    batch: Option<usize>,
) -> Result<(), String> {
    if heartbeat_ms == 0 {
        return Err("--heartbeat-ms must be positive".into());
    }
    if let Some(batch) = batch {
        if batch == 0 {
            return Err("--batch must be at least 1".into());
        }
        if batch > 4096 {
            return Err(format!("--batch must be at most 4096, got {batch}"));
        }
    }
    if let Some(lease_ms) = lease_ms {
        if lease_ms == 0 {
            return Err("--lease-ms must be positive".into());
        }
        let worker_heartbeat = heartbeat_ms / 4;
        if lease_ms <= worker_heartbeat {
            return Err(format!(
                "--lease-ms ({lease_ms}) must exceed the worker heartbeat interval \
                 ({worker_heartbeat} ms = --heartbeat-ms / 4); a shorter lease expires \
                 between two heartbeats of a healthy worker"
            ));
        }
    }
    Ok(())
}

/// Parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Cmd {
    /// Full pipeline + campaign. Boxed: the options dwarf every other
    /// variant.
    Hunt(Box<HuntOpts>),
    /// Fleet coordinator: own the job universe, lease jobs to TCP workers.
    Serve(Box<ServeOpts>),
    /// Fleet worker: join a coordinator and run leased jobs.
    Join(Box<JoinOpts>),
    /// Cluster-count summary.
    Strategies {
        /// Kernel configuration.
        config: KernelConfig,
        /// Random seed.
        seed: u64,
        /// Corpus target size.
        corpus: usize,
    },
    /// Registry dump.
    ListBugs,
    /// Reproduce a known bug.
    Repro {
        /// Table 2 id.
        bug: u8,
    },
    /// Store inspection: manifest hit rate and segment sizes.
    StoreStats {
        /// Store directory.
        store: PathBuf,
    },
    /// Read-only store integrity check.
    StoreFsck {
        /// Store directory.
        store: PathBuf,
    },
    /// Destructive store repair: drop damaged records, truncate torn tails.
    StoreRepair {
        /// Store directory.
        store: PathBuf,
    },
    /// Trace inspection: stage timings, funnel attrition, verification.
    TraceReport {
        /// Directory previously passed to `hunt --trace-dir`.
        trace_dir: PathBuf,
    },
    /// Usage text.
    Help,
}

fn parse_version(s: &str) -> Result<KernelVersion, String> {
    match s {
        "5.3.10" | "v5.3.10" => Ok(KernelVersion::V5_3_10),
        "5.12-rc3" | "v5.12-rc3" => Ok(KernelVersion::V5_12Rc3),
        other => Err(format!("unknown kernel version '{other}'")),
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    match s.to_ascii_lowercase().as_str() {
        "s-full" => Ok(Strategy::SFull),
        "s-ch" => Ok(Strategy::SCh),
        "s-ch-null" => Ok(Strategy::SChNull),
        "s-ch-unaligned" => Ok(Strategy::SChUnaligned),
        "s-ch-double" => Ok(Strategy::SChDouble),
        "s-ins" => Ok(Strategy::SIns),
        "s-ins-pair" => Ok(Strategy::SInsPair),
        "s-mem" => Ok(Strategy::SMem),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

fn take_value<'a>(
    argv: &'a [String],
    i: &mut usize,
    flag: &str,
) -> Result<&'a str, String> {
    *i += 1;
    argv.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag}: invalid number '{v}'"))
}

/// Parses the hidden `--worker-shard K/N` value.
fn parse_shard(v: &str) -> Result<(usize, usize), String> {
    let bad = || format!("--worker-shard: expected K/N with K < N, got '{v}'");
    let (k, n) = v.split_once('/').ok_or_else(bad)?;
    let shard: usize = k.trim().parse().map_err(|_| bad())?;
    let of: usize = n.trim().parse().map_err(|_| bad())?;
    if of == 0 || shard >= of {
        return Err(bad());
    }
    Ok((shard, of))
}

/// Parses a full command line (without `argv[0]`).
pub fn parse(argv: &[String]) -> Result<Cmd, String> {
    let Some(cmd) = argv.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Cmd::Help),
        "list-bugs" => Ok(Cmd::ListBugs),
        "repro" => {
            let mut bug: Option<u8> = None;
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--bug" => bug = Some(parse_num(take_value(argv, &mut i, "--bug")?, "--bug")?),
                    other => return Err(format!("unknown option '{other}'")),
                }
                i += 1;
            }
            let bug = bug.ok_or("repro requires --bug <id>")?;
            if ![1, 2, 3, 4, 11, 12].contains(&bug) {
                return Err(format!(
                    "bug #{bug} is not console-detectable; choose one of 1, 2, 3, 4, 11, 12"
                ));
            }
            Ok(Cmd::Repro { bug })
        }
        "store" => {
            let Some(sub) = argv.get(1) else {
                return Err("store requires a subcommand (stats, fsck, repair)".into());
            };
            let sub = sub.as_str();
            if !["stats", "fsck", "repair"].contains(&sub) {
                return Err(format!("unknown store subcommand '{sub}'"));
            }
            let mut store: Option<PathBuf> = None;
            let mut i = 2;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--store" => store = Some(PathBuf::from(take_value(argv, &mut i, "--store")?)),
                    other => return Err(format!("unknown option '{other}'")),
                }
                i += 1;
            }
            let store = store.ok_or_else(|| format!("store {sub} requires --store <dir>"))?;
            Ok(match sub {
                "stats" => Cmd::StoreStats { store },
                "fsck" => Cmd::StoreFsck { store },
                _ => Cmd::StoreRepair { store },
            })
        }
        "trace" => {
            let Some(sub) = argv.get(1) else {
                return Err("trace requires a subcommand (report)".into());
            };
            if sub != "report" {
                return Err(format!("unknown trace subcommand '{sub}'"));
            }
            let mut trace_dir: Option<PathBuf> = None;
            let mut i = 2;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--trace-dir" => {
                        trace_dir = Some(PathBuf::from(take_value(argv, &mut i, "--trace-dir")?))
                    }
                    other => return Err(format!("unknown option '{other}'")),
                }
                i += 1;
            }
            let trace_dir = trace_dir.ok_or("trace report requires --trace-dir <dir>")?;
            Ok(Cmd::TraceReport { trace_dir })
        }
        "strategies" | "hunt" => {
            let is_hunt = cmd == "hunt";
            // Fleet subcommands: `hunt serve --listen <addr> ...` and
            // `hunt join <addr> ...`. They reuse every hunt option.
            #[derive(PartialEq)]
            enum Mode {
                Local,
                Serve,
                Join,
            }
            let mut mode = Mode::Local;
            let mut addr: Option<String> = None;
            let mut start = 1;
            if is_hunt {
                match argv.get(1).map(String::as_str) {
                    Some("serve") => {
                        mode = Mode::Serve;
                        start = 2;
                    }
                    Some("join") => {
                        mode = Mode::Join;
                        let a = argv
                            .get(2)
                            .filter(|a| !a.starts_with('-'))
                            .ok_or("hunt join requires a coordinator address, e.g. hunt join 127.0.0.1:7070")?;
                        addr = Some(a.clone());
                        start = 3;
                    }
                    _ => {}
                }
            }
            let fleet = mode != Mode::Local;
            let mut listen: Option<String> = None;
            let mut lease_ms = 30_000u64;
            let mut batch = 4usize;
            let mut crash_budget = 2u32;
            let mut connect_retries = 5u32;
            let mut net_faults = NetFaultPlan::default();
            let mut version = KernelVersion::V5_12Rc3;
            let mut patched = false;
            let mut strategy = Strategy::SInsPair;
            let mut seed = 2021u64;
            let mut corpus = 100usize;
            let mut budget = 400usize;
            let mut trials = 24u32;
            let mut workers = 4usize;
            let mut random_order = false;
            let mut retries = 3u32;
            let mut job_deadline_secs = 60u64;
            let mut checkpoint: Option<PathBuf> = None;
            let mut resume: Option<PathBuf> = None;
            let mut resume_lenient = false;
            let mut store: Option<PathBuf> = None;
            let mut no_cache = false;
            let mut trace_dir: Option<PathBuf> = None;
            let mut supervise = false;
            let mut stop_file: Option<PathBuf> = None;
            let mut heartbeat_ms = 10_000u64;
            let mut fault_plan = FaultPlan::default();
            let mut worker_shard: Option<(usize, usize)> = None;
            let mut i = start;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--listen" if mode == Mode::Serve => {
                        listen = Some(take_value(argv, &mut i, "--listen")?.to_owned())
                    }
                    "--lease-ms" if mode == Mode::Serve => {
                        lease_ms = parse_num(take_value(argv, &mut i, "--lease-ms")?, "--lease-ms")?
                    }
                    "--batch" if fleet => {
                        batch = parse_num(take_value(argv, &mut i, "--batch")?, "--batch")?
                    }
                    "--crash-budget" if mode == Mode::Serve => {
                        crash_budget = parse_num(
                            take_value(argv, &mut i, "--crash-budget")?,
                            "--crash-budget",
                        )?
                    }
                    "--connect-retries" if mode == Mode::Join => {
                        connect_retries = parse_num(
                            take_value(argv, &mut i, "--connect-retries")?,
                            "--connect-retries",
                        )?;
                        if connect_retries == 0 {
                            return Err("--connect-retries must be at least 1".into());
                        }
                    }
                    "--net-faults" if mode == Mode::Join => {
                        net_faults =
                            NetFaultPlan::parse_spec(take_value(argv, &mut i, "--net-faults")?)
                                .map_err(|e| format!("--net-faults: {e}"))?
                    }
                    "--version" => version = parse_version(take_value(argv, &mut i, "--version")?)?,
                    "--patched" => patched = true,
                    "--strategy" if is_hunt => {
                        strategy = parse_strategy(take_value(argv, &mut i, "--strategy")?)?
                    }
                    "--seed" => seed = parse_num(take_value(argv, &mut i, "--seed")?, "--seed")?,
                    "--corpus" => corpus = parse_num(take_value(argv, &mut i, "--corpus")?, "--corpus")?,
                    "--budget" if is_hunt => {
                        budget = parse_num(take_value(argv, &mut i, "--budget")?, "--budget")?
                    }
                    "--trials" if is_hunt => {
                        trials = parse_num(take_value(argv, &mut i, "--trials")?, "--trials")?
                    }
                    "--workers" if is_hunt => {
                        workers = parse_num(take_value(argv, &mut i, "--workers")?, "--workers")?
                    }
                    "--random-order" if is_hunt => random_order = true,
                    "--retries" if is_hunt => {
                        retries = parse_num(take_value(argv, &mut i, "--retries")?, "--retries")?;
                        if retries == 0 {
                            return Err("--retries must be at least 1 (1 = no retries)".into());
                        }
                    }
                    "--job-deadline" if is_hunt => {
                        job_deadline_secs =
                            parse_num(take_value(argv, &mut i, "--job-deadline")?, "--job-deadline")?
                    }
                    "--checkpoint" if is_hunt => {
                        checkpoint = Some(PathBuf::from(take_value(argv, &mut i, "--checkpoint")?))
                    }
                    "--resume" if is_hunt => {
                        resume = Some(PathBuf::from(take_value(argv, &mut i, "--resume")?))
                    }
                    "--resume-or-fresh" if is_hunt => {
                        resume =
                            Some(PathBuf::from(take_value(argv, &mut i, "--resume-or-fresh")?));
                        resume_lenient = true;
                    }
                    "--store" if is_hunt => {
                        store = Some(PathBuf::from(take_value(argv, &mut i, "--store")?))
                    }
                    "--no-cache" if is_hunt => no_cache = true,
                    "--trace-dir" if is_hunt => {
                        trace_dir = Some(PathBuf::from(take_value(argv, &mut i, "--trace-dir")?))
                    }
                    "--supervise" if is_hunt => supervise = true,
                    "--stop-file" if is_hunt => {
                        stop_file = Some(PathBuf::from(take_value(argv, &mut i, "--stop-file")?))
                    }
                    "--heartbeat-ms" if is_hunt => {
                        heartbeat_ms =
                            parse_num(take_value(argv, &mut i, "--heartbeat-ms")?, "--heartbeat-ms")?;
                        if heartbeat_ms == 0 {
                            return Err("--heartbeat-ms must be positive".into());
                        }
                    }
                    "--fault-plan" if is_hunt => {
                        fault_plan = FaultPlan::parse_spec(take_value(argv, &mut i, "--fault-plan")?)
                            .map_err(|e| format!("--fault-plan: {e}"))?
                    }
                    "--worker-shard" if is_hunt => {
                        worker_shard = Some(parse_shard(take_value(argv, &mut i, "--worker-shard")?)?)
                    }
                    other => return Err(format!("unknown option '{other}'")),
                }
                i += 1;
            }
            if no_cache && store.is_none() {
                return Err("--no-cache requires --store <dir>".into());
            }
            if supervise && worker_shard.is_some() {
                return Err("--worker-shard is the supervisor's internal entrypoint; \
                            it cannot be combined with --supervise"
                    .into());
            }
            if stop_file.is_some() && !supervise && worker_shard.is_none() && !fleet {
                return Err("--stop-file requires --supervise, serve, or join".into());
            }
            if fleet && supervise {
                return Err("hunt serve/join already distribute the campaign; \
                            drop --supervise"
                    .into());
            }
            if fleet && worker_shard.is_some() {
                return Err("--worker-shard cannot be combined with serve/join".into());
            }
            if mode == Mode::Serve && listen.is_none() {
                return Err("hunt serve requires --listen <addr>".into());
            }
            if mode == Mode::Join && (checkpoint.is_some() || resume.is_some()) {
                return Err(
                    "a fleet worker does not checkpoint (the coordinator does); \
                     drop --checkpoint/--resume from hunt join"
                        .into(),
                );
            }
            // Timing sanity, shared with --supervise (exit code 2 on
            // nonsense instead of a fleet that thrashes at runtime).
            match mode {
                Mode::Serve => validate_timing(heartbeat_ms, Some(lease_ms), Some(batch))?,
                Mode::Join => validate_timing(heartbeat_ms, None, Some(batch))?,
                Mode::Local if supervise => validate_timing(heartbeat_ms, None, None)?,
                Mode::Local => {}
            }
            let mut config = match version {
                KernelVersion::V5_3_10 => KernelConfig::v5_3_10(),
                KernelVersion::V5_12Rc3 => KernelConfig::v5_12_rc3(),
            };
            if patched {
                config = config.patched();
            }
            if is_hunt {
                let hunt = HuntOpts {
                    config,
                    strategy,
                    seed,
                    corpus,
                    budget,
                    trials,
                    workers,
                    random_order,
                    retries,
                    job_deadline_secs,
                    checkpoint,
                    resume,
                    resume_lenient,
                    store,
                    no_cache,
                    trace_dir,
                    supervise,
                    stop_file,
                    heartbeat_ms,
                    fault_plan,
                    worker_shard,
                };
                Ok(match mode {
                    Mode::Local => Cmd::Hunt(Box::new(hunt)),
                    Mode::Serve => Cmd::Serve(Box::new(ServeOpts {
                        hunt,
                        listen: listen.expect("checked above"),
                        lease_ms,
                        batch,
                        crash_budget,
                    })),
                    Mode::Join => Cmd::Join(Box::new(JoinOpts {
                        hunt,
                        addr: addr.expect("checked above"),
                        batch,
                        connect_retries,
                        net_faults,
                    })),
                })
            } else {
                Ok(Cmd::Strategies { config, seed, corpus })
            }
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_hunt_with_options() {
        let cmd = parse(&argv(
            "hunt --version 5.3.10 --strategy s-ins --seed 7 --budget 50 --trials 8 --random-order",
        ))
        .unwrap();
        match cmd {
            Cmd::Hunt(o) => {
                assert_eq!(o.config.version, KernelVersion::V5_3_10);
                assert_eq!(o.strategy, Strategy::SIns);
                assert_eq!((o.seed, o.budget, o.trials), (7, 50, 8));
                assert!(o.random_order);
                // Fault-tolerance defaults.
                assert_eq!(o.retries, 3);
                assert_eq!(o.job_deadline_secs, 60);
                assert_eq!(o.checkpoint, None);
                assert_eq!(o.resume, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        let cmd = parse(&argv(
            "hunt --retries 5 --job-deadline 120 --checkpoint /tmp/cp.json --resume /tmp/old.json",
        ))
        .unwrap();
        match cmd {
            Cmd::Hunt(o) => {
                assert_eq!(o.retries, 5);
                assert_eq!(o.job_deadline_secs, 120);
                assert_eq!(o.checkpoint, Some(PathBuf::from("/tmp/cp.json")));
                assert_eq!(o.resume, Some(PathBuf::from("/tmp/old.json")));
                assert!(!o.resume_lenient, "--resume stays strict");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resume_or_fresh_sets_lenient_resume() {
        match parse(&argv("hunt --resume-or-fresh /tmp/cp.json")).unwrap() {
            Cmd::Hunt(o) => {
                assert_eq!(o.resume, Some(PathBuf::from("/tmp/cp.json")));
                assert!(o.resume_lenient);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("hunt --resume-or-fresh")).is_err(), "needs a value");
        assert!(parse(&argv("strategies --resume-or-fresh /x")).is_err(), "hunt-only");
    }

    #[test]
    fn parses_store_fsck_and_repair() {
        assert_eq!(
            parse(&argv("store fsck --store /tmp/sbstore")).unwrap(),
            Cmd::StoreFsck { store: PathBuf::from("/tmp/sbstore") }
        );
        assert_eq!(
            parse(&argv("store repair --store /tmp/sbstore")).unwrap(),
            Cmd::StoreRepair { store: PathBuf::from("/tmp/sbstore") }
        );
        assert!(parse(&argv("store fsck")).is_err(), "--store is required");
        assert!(parse(&argv("store repair")).is_err(), "--store is required");
    }

    #[test]
    fn rejects_zero_retries_and_bare_flags() {
        assert!(parse(&argv("hunt --retries 0")).is_err());
        assert!(parse(&argv("hunt --checkpoint")).is_err());
        assert!(parse(&argv("hunt --job-deadline nope")).is_err());
        // These are hunt-only options.
        assert!(parse(&argv("strategies --retries 2")).is_err());
    }

    #[test]
    fn parses_store_flags_and_subcommand() {
        let cmd = parse(&argv("hunt --store /tmp/sbstore --no-cache")).unwrap();
        match cmd {
            Cmd::Hunt(o) => {
                assert_eq!(o.store, Some(PathBuf::from("/tmp/sbstore")));
                assert!(o.no_cache);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&argv("store stats --store /tmp/sbstore")).unwrap(),
            Cmd::StoreStats { store: PathBuf::from("/tmp/sbstore") }
        );
        assert!(parse(&argv("hunt --no-cache")).is_err(), "--no-cache needs --store");
        assert!(parse(&argv("store")).is_err());
        assert!(parse(&argv("store frobnicate")).is_err());
        assert!(parse(&argv("store stats")).is_err());
        assert!(parse(&argv("strategies --store /x")).is_err(), "hunt-only flag");
    }

    #[test]
    fn parses_trace_flags_and_subcommand() {
        let cmd = parse(&argv("hunt --trace-dir /tmp/sbtrace")).unwrap();
        match cmd {
            Cmd::Hunt(o) => assert_eq!(o.trace_dir, Some(PathBuf::from("/tmp/sbtrace"))),
            other => panic!("unexpected {other:?}"),
        }
        // Disabled by default.
        match parse(&argv("hunt")).unwrap() {
            Cmd::Hunt(o) => assert_eq!(o.trace_dir, None),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&argv("trace report --trace-dir /tmp/sbtrace")).unwrap(),
            Cmd::TraceReport { trace_dir: PathBuf::from("/tmp/sbtrace") }
        );
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("trace frobnicate")).is_err());
        assert!(parse(&argv("trace report")).is_err(), "--trace-dir is required");
        assert!(parse(&argv("hunt --trace-dir")).is_err(), "flag needs a value");
        assert!(parse(&argv("strategies --trace-dir /x")).is_err(), "hunt-only flag");
    }

    #[test]
    fn parses_supervision_flags() {
        let cmd = parse(&argv(
            "hunt --supervise --stop-file /tmp/stop --heartbeat-ms 500 --fault-plan abort=2;stall=3",
        ))
        .unwrap();
        match cmd {
            Cmd::Hunt(o) => {
                assert!(o.supervise);
                assert_eq!(o.stop_file, Some(PathBuf::from("/tmp/stop")));
                assert_eq!(o.heartbeat_ms, 500);
                assert!(o.fault_plan.should_abort(2));
                assert!(o.fault_plan.should_stall(3));
                assert_eq!(o.worker_shard, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: in-process pool, inert plan, 10s heartbeat timeout.
        match parse(&argv("hunt")).unwrap() {
            Cmd::Hunt(o) => {
                assert!(!o.supervise);
                assert_eq!(o.heartbeat_ms, 10_000);
                assert!(o.fault_plan.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("hunt --stop-file /tmp/stop")).is_err(), "needs --supervise");
        assert!(parse(&argv("hunt --supervise --heartbeat-ms 0")).is_err());
        assert!(parse(&argv("hunt --fault-plan frob=1")).is_err(), "bad spec");
        assert!(parse(&argv("strategies --supervise")).is_err(), "hunt-only");
    }

    #[test]
    fn parses_the_hidden_worker_shard_entrypoint() {
        match parse(&argv("hunt --worker-shard 1/3 --stop-file /tmp/stop")).unwrap() {
            Cmd::Hunt(o) => {
                assert_eq!(o.worker_shard, Some((1, 3)));
                assert!(!o.supervise);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("hunt --worker-shard 3/3")).is_err(), "shard must be < of");
        assert!(parse(&argv("hunt --worker-shard 0/0")).is_err());
        assert!(parse(&argv("hunt --worker-shard nope")).is_err());
        assert!(
            parse(&argv("hunt --supervise --worker-shard 0/2")).is_err(),
            "the internal entrypoint cannot itself supervise"
        );
    }

    #[test]
    fn parses_hunt_serve_with_fleet_flags() {
        let cmd = parse(&argv(
            "hunt serve --listen 127.0.0.1:0 --lease-ms 5000 --batch 2 --crash-budget 7 \
             --seed 7 --heartbeat-ms 2000 --stop-file /tmp/stop",
        ))
        .unwrap();
        match cmd {
            Cmd::Serve(o) => {
                assert_eq!(o.listen, "127.0.0.1:0");
                assert_eq!(o.lease_ms, 5000);
                assert_eq!(o.batch, 2);
                assert_eq!(o.crash_budget, 7);
                assert_eq!(o.hunt.seed, 7);
                assert_eq!(o.hunt.heartbeat_ms, 2000);
                assert_eq!(o.hunt.stop_file, Some(PathBuf::from("/tmp/stop")));
                assert!(!o.hunt.supervise);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults.
        match parse(&argv("hunt serve --listen 127.0.0.1:7070")).unwrap() {
            Cmd::Serve(o) => {
                assert_eq!((o.lease_ms, o.batch, o.crash_budget), (30_000, 4, 2));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("hunt serve")).is_err(), "--listen is required");
        assert!(parse(&argv("hunt serve --listen x --supervise")).is_err());
        assert!(parse(&argv("hunt --lease-ms 5000")).is_err(), "serve-only flag");
    }

    #[test]
    fn parses_hunt_join_with_fleet_flags() {
        let cmd = parse(&argv(
            "hunt join 10.0.0.5:7070 --batch 3 --connect-retries 9 --net-faults drop=0:6 --seed 7",
        ))
        .unwrap();
        match cmd {
            Cmd::Join(o) => {
                assert_eq!(o.addr, "10.0.0.5:7070");
                assert_eq!(o.batch, 3);
                assert_eq!(o.connect_retries, 9);
                assert!(!o.net_faults.is_empty());
                assert_eq!(o.hunt.seed, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("hunt join")).is_err(), "address is required");
        assert!(parse(&argv("hunt join --batch 3")).is_err(), "address before flags");
        assert!(parse(&argv("hunt join x:1 --connect-retries 0")).is_err());
        assert!(parse(&argv("hunt join x:1 --net-faults frob=1")).is_err(), "bad spec");
        assert!(parse(&argv("hunt join x:1 --checkpoint /tmp/cp")).is_err());
        assert!(parse(&argv("hunt join x:1 --worker-shard 0/2")).is_err());
        assert!(parse(&argv("hunt --connect-retries 2")).is_err(), "join-only flag");
    }

    #[test]
    fn validates_fleet_timing_at_parse_time() {
        // Zero / oversized knobs are usage errors for serve...
        assert!(parse(&argv("hunt serve --listen x --lease-ms 0")).is_err());
        assert!(parse(&argv("hunt serve --listen x --batch 0")).is_err());
        assert!(parse(&argv("hunt serve --listen x --batch 5000")).is_err());
        assert!(parse(&argv("hunt serve --listen x --heartbeat-ms 0")).is_err());
        // ...and for join.
        assert!(parse(&argv("hunt join x:1 --batch 0")).is_err());
        // The lease must outlive the worker heartbeat interval (hb/4).
        let err = parse(&argv(
            "hunt serve --listen x --heartbeat-ms 40000 --lease-ms 10000",
        ))
        .unwrap_err();
        assert!(err.contains("heartbeat interval"), "{err}");
        // Equal-to-interval is still too short; one past it is fine.
        assert!(validate_timing(40_000, Some(10_000), Some(4)).is_err());
        assert!(validate_timing(40_000, Some(10_001), Some(4)).is_ok());
        // The shared validator also guards --supervise.
        assert!(validate_timing(0, None, None).is_err());
        assert!(parse(&argv("hunt --supervise --heartbeat-ms 0")).is_err());
    }

    #[test]
    fn parses_repro_and_validates_bug_ids() {
        assert_eq!(parse(&argv("repro --bug 12")).unwrap(), Cmd::Repro { bug: 12 });
        assert!(parse(&argv("repro --bug 9")).is_err());
        assert!(parse(&argv("repro")).is_err());
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("hunt --nope")).is_err());
        assert!(parse(&argv("hunt --strategy bogus")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn patched_flag_applies() {
        let cmd = parse(&argv("strategies --patched")).unwrap();
        match cmd {
            Cmd::Strategies { config, .. } => assert!(config.patched),
            other => panic!("unexpected {other:?}"),
        }
    }
}
