//! `snowboard` — command-line interface to the Snowboard reproduction.
//!
//! ```console
//! $ snowboard hunt --version 5.12-rc3 --strategy s-ins-pair --budget 300
//! $ snowboard list-bugs
//! $ snowboard repro --bug 12
//! $ snowboard strategies --version 5.12-rc3
//! ```

use std::process::ExitCode;

mod args;
mod cmd;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => cmd::run(cmd),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
