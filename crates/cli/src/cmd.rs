//! Command implementations.

use std::process::ExitCode;

use sb_kernel::prog::{IoctlCmd, MsgCmd, Path, Res};
use sb_kernel::{boot, bugs, KernelConfig, Program, Syscall};
use sb_store::Store;
use sb_vmm::Executor;
use snowboard::cluster::ALL_STRATEGIES;
use snowboard::metrics::{hits_bug, interleavings_to_expose, SchedKind, StoreStats};
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;
use snowboard::select::ClusterOrder;
use snowboard::{
    config_fingerprint, run_coordinator, run_join, CampaignCfg, CampaignReport, CheckpointCfg,
    FaultPlan, FleetCfg, FleetWork, IdentifyOpts, JobBudget, JoinCfg, NetFaultPlan, Pipeline,
    PipelineCfg, RetryPolicy, SuperviseCfg, WorkerCfg,
};

use crate::args::{Cmd, HuntOpts, JoinOpts, ServeOpts, USAGE};

/// Dispatches a parsed command.
pub fn run(cmd: Cmd) -> ExitCode {
    match cmd {
        Cmd::Help => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Cmd::ListBugs => list_bugs(),
        Cmd::Strategies { config, seed, corpus } => strategies(config, seed, corpus),
        Cmd::Repro { bug } => repro(bug),
        Cmd::StoreStats { store } => store_stats(&store),
        Cmd::StoreFsck { store } => store_fsck(&store),
        Cmd::StoreRepair { store } => store_repair(&store),
        Cmd::TraceReport { trace_dir } => trace_report(&trace_dir),
        Cmd::Hunt(opts) => hunt(*opts),
        Cmd::Serve(opts) => serve(*opts),
        Cmd::Join(opts) => join(*opts),
    }
}

/// Exit code for a hunt that finished but quarantined at least one job:
/// the campaign result is usable, yet not complete.
const EXIT_QUARANTINED: u8 = 3;

fn print_campaign_error(e: &snowboard::Error) {
    eprint!("error: campaign failed:");
    for line in e.chain() {
        eprint!(" {line};");
    }
    eprintln!();
}

fn print_store_error(context: &str, e: &sb_store::Error) {
    eprint!("error: {context}: {e}");
    let mut source = std::error::Error::source(e);
    while let Some(s) = source {
        eprint!("; {s}");
        source = s.source();
    }
    eprintln!();
}

/// `Store::open` creates directories as a side effect, which would silently
/// turn a typo'd path into a fresh empty store; commands that only *inspect*
/// must reject a path that isn't an existing store.
fn require_store_dir(dir: &std::path::Path) -> Result<(), ExitCode> {
    if !dir.is_dir() {
        eprintln!("error: store directory {} does not exist", dir.display());
        return Err(ExitCode::FAILURE);
    }
    if !dir.join("manifest.json").is_file() {
        eprintln!("error: {} is not a store (no manifest.json)", dir.display());
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

fn store_stats(dir: &std::path::Path) -> ExitCode {
    if let Err(code) = require_store_dir(dir) {
        return code;
    }
    let store = match Store::open(dir) {
        Ok(s) => s,
        Err(e) => {
            print_store_error("opening store", &e);
            return ExitCode::FAILURE;
        }
    };
    let (hits, misses) = store.last_counters();
    // A run with zero lookups has a 0.0% hit rate, not a vacuous 100%.
    let rate = store.last_hit_rate().unwrap_or(0.0);
    println!(
        "last run: profile-hit-rate {:.1}% ({hits}/{})",
        100.0 * rate,
        hits + misses
    );
    let (sizes, stats) = match store.segment_sizes() {
        Ok(r) => r,
        Err(e) => {
            print_store_error("reading segments", &e);
            return ExitCode::FAILURE;
        }
    };
    println!("{} segment file(s), {} bytes total", stats.segments, stats.bytes);
    for (name, bytes) in sizes {
        println!("  {name:<14} {bytes:>12} B");
    }
    ExitCode::SUCCESS
}

fn store_fsck(dir: &std::path::Path) -> ExitCode {
    if let Err(code) = require_store_dir(dir) {
        return code;
    }
    let report = match sb_store::fsck(dir) {
        Ok(r) => r,
        Err(e) => {
            print_store_error("fsck", &e);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} segment file(s): {} record(s) ok, {} damaged, {} torn byte(s)",
        report.segments, report.records_ok, report.records_damaged, report.torn_bytes
    );
    for p in &report.problems {
        println!("  {p}");
    }
    if report.clean() {
        println!("store is clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "store is dirty; `snowboard-cli store repair --store {}` drops the damage",
            dir.display()
        );
        ExitCode::FAILURE
    }
}

fn store_repair(dir: &std::path::Path) -> ExitCode {
    if let Err(code) = require_store_dir(dir) {
        return code;
    }
    let report = match sb_store::repair(dir) {
        Ok(r) => r,
        Err(e) => {
            print_store_error("repair", &e);
            return ExitCode::FAILURE;
        }
    };
    if report.untouched() {
        println!("nothing to repair");
    } else {
        println!(
            "dropped {} profile record(s) and {} PMC record(s); \
             truncated {} torn segment(s), removed {} unrecognizable segment(s)",
            report.dropped_profiles,
            report.dropped_pmcs,
            report.truncated_segments,
            report.removed_segments
        );
        println!("dropped records will be recomputed and healed on the next store-backed run");
    }
    ExitCode::SUCCESS
}

fn trace_report(dir: &std::path::Path) -> ExitCode {
    let path = dir.join("trace.jsonl");
    let report = match sb_obs::TraceReport::from_file(&path) {
        Ok(r) => r,
        Err(e) => {
            // `from_file` errors already name the path.
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if report.verify().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_hunt_store_stats(s: &StoreStats) {
    let total = s.profile_hits + s.profile_misses;
    println!(
        "[store] profile-hit-rate {:.1}% ({}/{total})",
        100.0 * s.hit_rate(),
        s.profile_hits
    );
    let pmc_mode = if s.pmc_cache_hit {
        "cached"
    } else if s.pmc_incremental {
        "incremental"
    } else {
        "rebuilt"
    };
    println!(
        "[store] pmcs {pmc_mode}; {} segment(s), {} bytes; {} shard(s), skew {:.2}",
        s.segments, s.stored_bytes, s.shards, s.shard_skew
    );
    if s.records_damaged > 0 {
        println!(
            "[store] damaged {} record(s), healed {}",
            s.records_damaged, s.records_healed
        );
    }
}

fn list_bugs() -> ExitCode {
    println!("{:<5} {:<4} {:<16} {:<9} summary", "id", "type", "versions", "status");
    for b in bugs::registry() {
        let versions = b
            .versions
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "#{:<4} {:<4} {:<16} {:<9} {}",
            b.id,
            b.kind.to_string(),
            versions,
            if b.harmful { "harmful" } else { "benign" },
            b.title
        );
    }
    ExitCode::SUCCESS
}

fn strategies(config: KernelConfig, seed: u64, corpus: usize) -> ExitCode {
    let p = Pipeline::prepare(
        config,
        PipelineCfg {
            seed,
            corpus_target: corpus,
            fuzz_budget: (corpus as u64) * 15,
            workers: 4,
            ..PipelineCfg::default()
        },
    );
    println!(
        "corpus: {} tests, {} shared accesses, {} PMCs",
        p.corpus.len(),
        p.stats.shared_accesses,
        p.pmcs.len()
    );
    println!("\n{:<16} clusters", "strategy");
    for s in ALL_STRATEGIES {
        println!("{:<16} {}", s.to_string(), p.cluster_count(s));
    }
    ExitCode::SUCCESS
}

/// The retry/watchdog configuration shared by every hunt mode — the
/// supervisor, its workers, and the in-process pool must agree on it for
/// supervised results to be bit-identical to single-process runs.
fn hunt_campaign_cfg(opts: &HuntOpts) -> CampaignCfg {
    CampaignCfg {
        seed: opts.seed,
        trials_per_pmc: opts.trials,
        max_tested_pmcs: opts.budget,
        workers: opts.workers,
        stop_on_finding: true,
        incidental: true,
        retry: RetryPolicy {
            max_attempts: opts.retries,
            ..RetryPolicy::default()
        },
        budget: JobBudget {
            max_steps: None,
            deadline: (opts.job_deadline_secs > 0)
                .then(|| std::time::Duration::from_secs(opts.job_deadline_secs)),
        },
        checkpoint: None,
        resume_from: None,
        resume_lenient: false,
        fault_plan: opts.fault_plan.clone(),
        tracer: sb_obs::Tracer::disabled(),
    }
}

/// The hidden `--worker-shard K/N` entrypoint the supervisor re-execs the
/// binary into: silently prepare the same pipeline, then run one shard of
/// the campaign speaking the worker protocol on stdout. Everything
/// human-readable stays off stdout — the supervisor owns that pipe.
fn hunt_worker(opts: HuntOpts, shard: usize, of: usize) -> ExitCode {
    let mut fault_plan = opts.fault_plan.clone();
    // `SB_PROCESS_FAULTS` injects process-level faults into workers without
    // the supervisor knowing, mimicking an external OOM killer.
    if let Ok(spec) = std::env::var("SB_PROCESS_FAULTS") {
        match FaultPlan::parse_spec(&spec) {
            Ok(env_plan) => fault_plan.merge(env_plan),
            Err(e) => {
                eprintln!("error: SB_PROCESS_FAULTS: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let p = Pipeline::prepare(
        opts.config,
        PipelineCfg {
            seed: opts.seed,
            corpus_target: opts.corpus,
            fuzz_budget: (opts.corpus as u64) * 15,
            workers: opts.workers,
            ..PipelineCfg::default()
        },
    );
    let order = if opts.random_order {
        ClusterOrder::Random
    } else {
        ClusterOrder::UncommonFirst
    };
    let exemplars = p.exemplars(opts.strategy, order);
    let mut cfg = hunt_campaign_cfg(&opts);
    cfg.fault_plan = fault_plan.clone();
    // The supervisor saves its merged checkpoint immediately before every
    // spawn and passes it as --resume; strict validation here turns any
    // supervisor/worker disagreement into a loud early death.
    cfg.resume_from = opts.resume.clone();
    cfg.resume_lenient = opts.resume_lenient;
    let wcfg = WorkerCfg {
        shard,
        of,
        heartbeat: std::time::Duration::from_millis((opts.heartbeat_ms / 4).max(25)),
        stop_file: opts.stop_file.clone(),
        process_faults: fault_plan,
    };
    match snowboard::run_worker_shard(&p.booted, &p.corpus, &p.pmcs, &exemplars, &cfg, &wcfg) {
        Ok(_stopped) => ExitCode::SUCCESS,
        Err(e) => {
            print_campaign_error(&e);
            ExitCode::FAILURE
        }
    }
}

/// Opens the JSONL tracer for `--trace-dir`, degrading to a disabled
/// tracer (with a warning) when the destination is unwritable — the
/// campaign is the product, the trace is a diagnostic.
fn open_tracer(trace_dir: &Option<std::path::PathBuf>) -> sb_obs::Tracer {
    match trace_dir {
        Some(dir) => {
            let opened = std::fs::create_dir_all(dir)
                .and_then(|()| sb_obs::Tracer::jsonl(&dir.join("trace.jsonl")));
            match opened {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "[trace] warning: cannot write trace events under {} ({e}); \
                         tracing disabled for this run",
                        dir.display()
                    );
                    sb_obs::Tracer::disabled()
                }
            }
        }
        None => sb_obs::Tracer::disabled(),
    }
}

/// Stages 1–2 for the hunt-family commands: in-memory, or store-backed
/// when `--store` was given.
fn prepare_hunt_pipeline(
    config: KernelConfig,
    pipeline_cfg: PipelineCfg,
    store: &Option<std::path::PathBuf>,
    no_cache: bool,
    workers: usize,
) -> Result<(Pipeline, Option<StoreStats>), ExitCode> {
    match store {
        Some(dir) => {
            let mut st = match Store::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    print_store_error("opening store", &e);
                    return Err(ExitCode::FAILURE);
                }
            };
            st.set_read_cache(!no_cache);
            let shards = workers.max(1);
            match sb_store::prepare(
                config,
                &pipeline_cfg,
                &IdentifyOpts::sharded(shards, workers),
                &mut st,
            ) {
                Ok((p, stats)) => {
                    print_hunt_store_stats(&stats);
                    Ok((p, Some(stats)))
                }
                Err(e) => {
                    print_store_error("store-backed prepare", &e);
                    Err(ExitCode::FAILURE)
                }
            }
        }
        None => Ok((Pipeline::prepare(config, pipeline_cfg), None)),
    }
}

/// Emits the authoritative end-of-run totals that `trace report` verifies
/// its event-level reconstruction against, then flushes the tracer.
fn emit_summary(
    tracer: &sb_obs::Tracer,
    p: &Pipeline,
    clusters: usize,
    report: &CampaignReport,
    trace_dir: &Option<std::path::PathBuf>,
) {
    tracer.emit(&sb_obs::Event::Summary {
        t: tracer.now_us(),
        profiles: p.profiles.len() as u64,
        shared_accesses: p.stats.shared_accesses as u64,
        pmcs: p.pmcs.len() as u64,
        clusters: clusters as u64,
        jobs: report.tested() as u64,
        trials: report.executions,
        steps: report.total_steps,
        findings: report.issues.len() as u64,
        quarantined: report.quarantined.len() as u64,
    });
    tracer.flush();
    if tracer.enabled() {
        if let Some(dir) = trace_dir {
            eprintln!(
                "[trace] events written to {}; inspect with `snowboard-cli trace report --trace-dir {}`",
                dir.join("trace.jsonl").display(),
                dir.display()
            );
        }
    }
}

/// Prints the campaign report to stdout and picks the exit code. Shared by
/// `hunt` and `hunt serve` — a fleet run's stdout is bit-identical to the
/// single-process run's by construction.
fn print_report(report: &CampaignReport) -> ExitCode {
    println!(
        "tested {} PMCs in {} executions; {:.1}% exercised their predicted channel",
        report.tested(),
        report.executions,
        100.0 * report.accuracy()
    );
    if !report.quarantined.is_empty() {
        println!("quarantined {} job(s):", report.quarantined.len());
        for (kind, n) in report.quarantine_histogram() {
            println!("  {kind}: {n}");
        }
        for q in &report.quarantined {
            let pmc = q.pmc.map_or("no PMC".to_string(), |id| format!("PMC {id}"));
            println!(
                "  job {} ({pmc}), {} attempt(s): {}",
                q.job,
                q.attempts,
                q.chain.join(" <- ")
            );
        }
    }
    // Exit 3 ("completed with quarantines") tells scripts the run finished
    // but its coverage has holes; 0 is reserved for a fully clean campaign.
    let final_code = if report.quarantined.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_QUARANTINED)
    };
    if report.issues.is_empty() {
        println!("no issues found");
        return final_code;
    }
    println!("\nissues, in discovery order:");
    for issue in &report.issues {
        match issue.bug_id.and_then(bugs::by_id) {
            Some(b) => println!(
                "  after {:>4} tests: #{} [{}] {}",
                issue.found_after_tests,
                b.id,
                if b.harmful { "HARMFUL" } else { "benign" },
                b.title
            ),
            None => println!(
                "  after {:>4} tests: (untriaged) {}",
                issue.found_after_tests, issue.key
            ),
        }
    }
    final_code
}

fn hunt(opts: HuntOpts) -> ExitCode {
    if let Some((shard, of)) = opts.worker_shard {
        return hunt_worker(opts, shard, of);
    }
    let base_cfg = hunt_campaign_cfg(&opts);
    let version_str = opts.config.version.to_string();
    let patched = opts.config.patched;
    let HuntOpts {
        config,
        strategy,
        seed,
        corpus,
        budget,
        trials,
        workers,
        random_order,
        retries,
        job_deadline_secs,
        checkpoint,
        resume,
        resume_lenient,
        store,
        no_cache,
        trace_dir,
        supervise,
        stop_file,
        heartbeat_ms,
        fault_plan,
        worker_shard: _,
    } = opts;
    let tracer = open_tracer(&trace_dir);
    eprintln!("[hunt] preparing pipeline ({:?})...", config.version);
    let pipeline_cfg = PipelineCfg {
        seed,
        corpus_target: corpus,
        fuzz_budget: (corpus as u64) * 15,
        workers,
        tracer: tracer.clone(),
    };
    let (p, store_stats) = match prepare_hunt_pipeline(config, pipeline_cfg, &store, no_cache, workers)
    {
        Ok(r) => r,
        Err(code) => return code,
    };
    let clusters = p.cluster_count(strategy);
    eprintln!(
        "[hunt] {} tests, {} PMCs, {clusters} {} clusters",
        p.corpus.len(),
        p.pmcs.len(),
        strategy
    );
    let order = if random_order {
        ClusterOrder::Random
    } else {
        ClusterOrder::UncommonFirst
    };
    let exemplars = p.exemplars_traced(strategy, order, &tracer);
    let mut cfg = base_cfg;
    cfg.checkpoint = checkpoint.clone().map(CheckpointCfg::new);
    cfg.resume_from = resume;
    cfg.resume_lenient = resume_lenient;
    cfg.tracer = tracer.clone();
    // The supervisor's merged checkpoint: the user's --checkpoint path when
    // given, else a private temp file removed after a clean finish.
    let sup_ckpt = checkpoint.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("sb-supervise-{}.json", std::process::id()))
    });
    let sup_ckpt_is_temp = checkpoint.is_none();
    let report = if supervise {
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("error: cannot locate own binary to re-exec workers: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scfg = SuperviseCfg {
            workers: workers.max(1),
            heartbeat_timeout: std::time::Duration::from_millis(heartbeat_ms),
            stop_file: stop_file.clone(),
            checkpoint: sup_ckpt.clone(),
            ..SuperviseCfg::default()
        };
        eprintln!(
            "[supervise] {} worker process(es), heartbeat timeout {heartbeat_ms} ms",
            scfg.workers
        );
        // Workers re-exec this binary into the hidden --worker-shard
        // entrypoint with everything that shapes campaign results; --store
        // and --trace-dir stay supervisor-only (one writer per resource).
        let mut wargs: Vec<String> = vec![
            "hunt".into(),
            "--version".into(),
            version_str,
            "--strategy".into(),
            strategy.to_string(),
            "--seed".into(),
            seed.to_string(),
            "--corpus".into(),
            corpus.to_string(),
            "--budget".into(),
            budget.to_string(),
            "--trials".into(),
            trials.to_string(),
            "--workers".into(),
            workers.to_string(),
            "--retries".into(),
            retries.to_string(),
            "--job-deadline".into(),
            job_deadline_secs.to_string(),
            "--heartbeat-ms".into(),
            heartbeat_ms.to_string(),
            "--resume".into(),
            sup_ckpt.display().to_string(),
        ];
        if patched {
            wargs.push("--patched".into());
        }
        if random_order {
            wargs.push("--random-order".into());
        }
        if let Some(sf) = &stop_file {
            wargs.push("--stop-file".into());
            wargs.push(sf.display().to_string());
        }
        if !fault_plan.is_empty() {
            wargs.push("--fault-plan".into());
            wargs.push(fault_plan.to_spec());
        }
        let spawn = |shard: usize| {
            let mut c = std::process::Command::new(&exe);
            c.args(&wargs)
                .arg("--worker-shard")
                .arg(format!("{shard}/{}", scfg.workers));
            c
        };
        snowboard::run_supervised(&exemplars, &cfg, &scfg, spawn)
    } else {
        p.campaign(&exemplars, &cfg)
    };
    let mut report = match report {
        Ok(r) => r,
        Err(e) => {
            print_campaign_error(&e);
            return ExitCode::FAILURE;
        }
    };
    if let Some(s) = &report.supervise {
        eprintln!(
            "[supervise] {} spawn(s) + {} respawn(s), {} crash(es), \
             {} heartbeat miss(es), {} shard(s) abandoned",
            s.spawns, s.respawns, s.crashes, s.heartbeat_misses, s.shards_abandoned
        );
        if s.stopped {
            eprintln!(
                "[supervise] stopped by stop file; resume with --supervise --resume {}",
                sup_ckpt.display()
            );
        } else if sup_ckpt_is_temp {
            // Clean finish: the private checkpoint has served its purpose.
            let _ = std::fs::remove_file(&sup_ckpt);
        }
    }
    report.store = store_stats;
    emit_summary(&tracer, &p, clusters, &report, &trace_dir);
    print_report(&report)
}

/// The campaign-shaping parameters a fleet worker must share with its
/// coordinator for merged results to make sense, hashed for the handshake.
/// Process/network fault plans are deliberately excluded: they change *how*
/// a worker fails, never what a completed job computes.
fn fleet_fingerprint(o: &HuntOpts) -> u64 {
    config_fingerprint(&[
        ("version", o.config.version.to_string()),
        ("patched", o.config.patched.to_string()),
        ("strategy", o.strategy.to_string()),
        ("seed", o.seed.to_string()),
        ("corpus", o.corpus.to_string()),
        ("budget", o.budget.to_string()),
        ("trials", o.trials.to_string()),
        ("random_order", o.random_order.to_string()),
        ("retries", o.retries.to_string()),
        ("job_deadline", o.job_deadline_secs.to_string()),
    ])
}

/// `hunt serve`: run the campaign as a fleet coordinator. Same pipeline,
/// same report, same stdout as a plain `hunt` — the jobs just execute on
/// whoever joins.
fn serve(opts: ServeOpts) -> ExitCode {
    let listener = match std::net::TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => eprintln!("[fleet] listening on {addr}"),
        Err(_) => eprintln!("[fleet] listening on {}", opts.listen),
    }
    let o = &opts.hunt;
    let tracer = open_tracer(&o.trace_dir);
    eprintln!("[hunt] preparing pipeline ({:?})...", o.config.version);
    let pipeline_cfg = PipelineCfg {
        seed: o.seed,
        corpus_target: o.corpus,
        fuzz_budget: (o.corpus as u64) * 15,
        workers: o.workers,
        tracer: tracer.clone(),
    };
    let (p, store_stats) =
        match prepare_hunt_pipeline(o.config, pipeline_cfg, &o.store, o.no_cache, o.workers) {
            Ok(r) => r,
            Err(code) => return code,
        };
    let clusters = p.cluster_count(o.strategy);
    eprintln!(
        "[hunt] {} tests, {} PMCs, {clusters} {} clusters",
        p.corpus.len(),
        p.pmcs.len(),
        o.strategy
    );
    let order = if o.random_order {
        ClusterOrder::Random
    } else {
        ClusterOrder::UncommonFirst
    };
    let exemplars = p.exemplars_traced(o.strategy, order, &tracer);
    let mut cfg = hunt_campaign_cfg(o);
    cfg.checkpoint = o.checkpoint.clone().map(CheckpointCfg::new);
    cfg.resume_from = o.resume.clone();
    cfg.resume_lenient = o.resume_lenient;
    cfg.tracer = tracer.clone();
    // The coordinator's merged checkpoint: the user's --checkpoint path
    // when given, else a private temp file removed after a clean finish.
    let ckpt = o.checkpoint.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("sb-fleet-{}.json", std::process::id()))
    });
    let ckpt_is_temp = o.checkpoint.is_none();
    let fcfg = FleetCfg {
        heartbeat_timeout: std::time::Duration::from_millis(o.heartbeat_ms),
        lease_deadline: std::time::Duration::from_millis(opts.lease_ms),
        batch: opts.batch,
        crash_budget: opts.crash_budget,
        stop_file: o.stop_file.clone(),
        checkpoint: ckpt.clone(),
        config_hash: fleet_fingerprint(o),
        ..FleetCfg::default()
    };
    eprintln!(
        "[fleet] heartbeat timeout {} ms, lease {} ms, batch {}",
        o.heartbeat_ms, opts.lease_ms, opts.batch
    );
    let mut report = match run_coordinator(listener, &exemplars, &cfg, &fcfg) {
        Ok(r) => r,
        Err(e) => {
            print_campaign_error(&e);
            return ExitCode::FAILURE;
        }
    };
    if let Some(s) = &report.fleet {
        eprintln!(
            "[fleet] {} worker(s) joined, {} rejected; {} lease(s), {} eviction(s), \
             {} reassigned job(s), {} duplicate result(s), {} abandoned",
            s.workers_joined,
            s.workers_rejected,
            s.leases_granted,
            s.evictions,
            s.jobs_reassigned,
            s.duplicate_results,
            s.gave_up_jobs
        );
        if s.stopped {
            eprintln!(
                "[fleet] stopped by stop file; resume with hunt serve --resume {}",
                ckpt.display()
            );
        } else if ckpt_is_temp {
            let _ = std::fs::remove_file(&ckpt);
        }
    }
    report.store = store_stats;
    emit_summary(&tracer, &p, clusters, &report, &o.trace_dir);
    print_report(&report)
}

/// `hunt join`: run jobs for a fleet coordinator until it drains. Produces
/// no report of its own — results stream to the coordinator.
fn join(opts: JoinOpts) -> ExitCode {
    let o = &opts.hunt;
    let mut fault_plan = o.fault_plan.clone();
    if let Ok(spec) = std::env::var("SB_PROCESS_FAULTS") {
        match FaultPlan::parse_spec(&spec) {
            Ok(env_plan) => fault_plan.merge(env_plan),
            Err(e) => {
                eprintln!("error: SB_PROCESS_FAULTS: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut net_faults = opts.net_faults.clone();
    // `SB_NET_FAULTS` injects network faults without the coordinator (or a
    // wrapper script) knowing, mimicking a flaky link.
    if let Ok(spec) = std::env::var("SB_NET_FAULTS") {
        match NetFaultPlan::parse_spec(&spec) {
            Ok(env_plan) => net_faults.merge(env_plan),
            Err(e) => {
                eprintln!("error: SB_NET_FAULTS: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut cfg = hunt_campaign_cfg(o);
    cfg.fault_plan = fault_plan;
    let jcfg = JoinCfg {
        addr: opts.addr.clone(),
        config_hash: fleet_fingerprint(o),
        heartbeat: std::time::Duration::from_millis((o.heartbeat_ms / 4).max(25)),
        batch: opts.batch,
        connect_attempts: opts.connect_retries,
        stop_file: o.stop_file.clone(),
        net_faults,
        ..JoinCfg::default()
    };
    eprintln!("[fleet] joining coordinator at {}", opts.addr);
    let prep = {
        let config = o.config;
        let pipeline_cfg = PipelineCfg {
            seed: o.seed,
            corpus_target: o.corpus,
            fuzz_budget: (o.corpus as u64) * 15,
            workers: o.workers,
            ..PipelineCfg::default()
        };
        let strategy = o.strategy;
        let order = if o.random_order {
            ClusterOrder::Random
        } else {
            ClusterOrder::UncommonFirst
        };
        move || {
            let p = Pipeline::prepare(config, pipeline_cfg);
            let exemplars = p.exemplars(strategy, order);
            Ok(FleetWork {
                booted: p.booted,
                corpus: p.corpus,
                set: p.pmcs,
                exemplars,
            })
        }
    };
    match run_join(&cfg, &jcfg, prep) {
        Ok(s) => {
            eprintln!(
                "[fleet] worker done: {} job(s) over {} lease(s), {} reconnect(s){}",
                s.jobs_completed,
                s.leases,
                s.reconnects,
                if s.stopped { " (stopped by stop file)" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            // One line, exit 1: scripts pointed at a dead coordinator get a
            // bounded, parseable failure, never a hang.
            eprintln!("error: {}", e.chain().join("; "));
            ExitCode::FAILURE
        }
    }
}

/// Known reproduction recipes for the console-detectable bugs.
fn repro_recipe(bug: u8) -> (KernelConfig, Program, Program, &'static str, &'static str) {
    match bug {
        1 => (
            KernelConfig::v5_3_10(),
            Program::new(vec![
                Syscall::Msgget { key: 3 },
                Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
            ]),
            Program::new(vec![Syscall::Msgget { key: 3 }]),
            "rht_assign_unlock",
            "rht_ptr",
        ),
        2 => (
            KernelConfig::v5_12_rc3(),
            Program::new(vec![
                Syscall::Open { path: Path::Ext4File(1) },
                Syscall::Write { fd: Res(0), off: 1, val: 7 },
                Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
            ]),
            Program::new(vec![
                Syscall::Open { path: Path::Ext4File(1) },
                Syscall::Write { fd: Res(0), off: 1, val: 7 },
                Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
            ]),
            "ext4_mark_inode_dirty",
            "swap_inode_boot_loader",
        ),
        3 => (
            KernelConfig::v5_3_10(),
            Program::new(vec![
                Syscall::Open { path: Path::Ext4File(2) },
                Syscall::Write { fd: Res(0), off: 0, val: 1 },
            ]),
            Program::new(vec![
                Syscall::Open { path: Path::Ext4File(2) },
                Syscall::Read { fd: Res(0), off: 0 },
            ]),
            "ext4_ext_insert",
            "ext4_ext_check_inode",
        ),
        4 => (
            KernelConfig::v5_3_10(),
            Program::new(vec![
                Syscall::Open { path: Path::BlockDev },
                Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkSetSize, arg: 0 },
            ]),
            Program::new(vec![
                Syscall::Open { path: Path::Ext4File(0) },
                Syscall::Write { fd: Res(0), off: 9, val: 3 },
            ]),
            "blkdev_set_capacity",
            "blk_update_request",
        ),
        11 => (
            KernelConfig::v5_12_rc3(),
            Program::new(vec![
                Syscall::Mkdir { item: 1 },
                Syscall::Rmdir { item: 1 },
            ]),
            Program::new(vec![
                Syscall::Mkdir { item: 1 },
                Syscall::Open { path: Path::Configfs(1) },
            ]),
            "configfs_detach",
            "configfs_lookup",
        ),
        12 => (
            KernelConfig::v5_12_rc3(),
            Program::new(vec![
                Syscall::Socket { domain: sb_kernel::prog::Domain::L2tp },
                Syscall::Connect { sock: Res(0), tunnel_id: 2 },
            ]),
            Program::new(vec![
                Syscall::Socket { domain: sb_kernel::prog::Domain::L2tp },
                Syscall::Connect { sock: Res(0), tunnel_id: 2 },
                Syscall::Sendmsg { sock: Res(0), len: 1 },
            ]),
            "list_add_rcu",
            "l2tp_tunnel_get",
        ),
        other => unreachable!("validated at parse time: {other}"),
    }
}

fn repro(bug: u8) -> ExitCode {
    let b = bugs::by_id(bug).expect("registry id");
    println!("reproducing #{bug}: {}\n", b.title);
    let (config, writer, reader, wfn, rfn) = repro_recipe(bug);
    println!("kernel {:?}\n\ntest 1 (writer):\n{writer}\ntest 2 (reader):\n{reader}", config.version);
    let booted = boot(config);
    let profiles = profile_corpus(&booted, &[writer.clone(), reader.clone()], 2);
    let set = identify(&profiles);
    let Some((_, pmc)) = snowboard::metrics::find_pmc_by_sites(&set, wfn, rfn) else {
        eprintln!("PMC ({wfn} -> {rfn}) not predicted; cannot reproduce");
        return ExitCode::FAILURE;
    };
    println!(
        "scheduling hint: write {} -> read {}\n",
        pmc.key.w.ins.display_name(),
        pmc.key.r.ins.display_name()
    );
    let mut exec = Executor::new(2);
    match interleavings_to_expose(
        &mut exec, &booted, &writer, &reader, pmc, SchedKind::Snowboard, 1, 4096, hits_bug(bug),
    ) {
        Some(r) => {
            println!("exposed after {} interleavings", r.interleavings);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("not exposed within 4096 interleavings");
            ExitCode::FAILURE
        }
    }
}
