//! End-to-end CLI tests driving the built `snowboard-cli` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snowboard-cli"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sb-cli-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// An empty-but-valid store: what `Store::open` + `flush` leaves behind
/// before any profiles are inserted.
fn write_fresh_store(dir: &std::path::Path) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(
        dir.join("manifest.json"),
        r#"{"version":1,"next_segment":0,"last_hits":0,"last_misses":0,"profiles":{},"pmcs":[]}"#,
    )
    .unwrap();
}

#[test]
fn store_stats_prints_zero_hit_rate_for_zero_lookups() {
    // A freshly created store has recorded no profile lookups; the hit rate
    // must print as 0.0%, not as a vacuous 100% or a special-cased message.
    let dir = scratch_dir("fresh-store");
    write_fresh_store(&dir);
    let out = bin()
        .args(["store", "stats", "--store"])
        .arg(&dir)
        .output()
        .expect("run store stats");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(
        text.contains("profile-hit-rate 0.0% (0/0)"),
        "expected explicit 0.0% for 0/0, got:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_commands_reject_a_missing_or_empty_dir() {
    // `Store::open` creates directories as a side effect; the inspection
    // commands must not turn a typo'd path into a fresh store — they print
    // one friendly line on stderr and exit nonzero.
    let missing = scratch_dir("no-such-store");
    for sub in ["stats", "fsck", "repair"] {
        let out = bin()
            .args(["store", sub, "--store"])
            .arg(&missing)
            .output()
            .expect("run store subcommand");
        assert!(!out.status.success(), "store {sub} on a missing dir must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("does not exist"),
            "store {sub}: expected a friendly error, got: {err}"
        );
        assert!(!missing.exists(), "store {sub} must not create the directory");
    }

    // An existing directory that is not a store (no manifest) is also an
    // error, not an empty report.
    let empty = scratch_dir("empty-not-a-store");
    std::fs::create_dir_all(&empty).unwrap();
    let out = bin()
        .args(["store", "stats", "--store"])
        .arg(&empty)
        .output()
        .expect("run store stats");
    assert!(!out.status.success(), "empty dir is not a store");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a store"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn store_fsck_and_repair_round_trip() {
    let dir = scratch_dir("fsck-repair");
    write_fresh_store(&dir);
    let clean = bin()
        .args(["store", "fsck", "--store"])
        .arg(&dir)
        .output()
        .expect("run fsck");
    assert!(clean.status.success(), "fresh store must fsck clean");
    assert!(stdout(&clean).contains("store is clean"), "{}", stdout(&clean));

    // A manifest entry pointing at a segment that no longer exists: fsck
    // reports it and exits nonzero; repair drops it; fsck is clean again.
    std::fs::write(
        dir.join("manifest.json"),
        r#"{"version":1,"next_segment":1,"last_hits":0,"last_misses":0,"profiles":{"42":{"status":"ok","segment":0,"offset":8,"len":5}},"pmcs":[]}"#,
    )
    .unwrap();
    let dirty = bin()
        .args(["store", "fsck", "--store"])
        .arg(&dir)
        .output()
        .expect("run fsck");
    assert!(!dirty.status.success(), "damage must make fsck exit nonzero");
    assert!(stdout(&dirty).contains("store is dirty"), "{}", stdout(&dirty));

    let repair = bin()
        .args(["store", "repair", "--store"])
        .arg(&dir)
        .output()
        .expect("run repair");
    assert!(repair.status.success(), "stderr: {}", String::from_utf8_lossy(&repair.stderr));
    assert!(stdout(&repair).contains("dropped 1 profile record(s)"), "{}", stdout(&repair));

    let clean_again = bin()
        .args(["store", "fsck", "--store"])
        .arg(&dir)
        .output()
        .expect("run fsck");
    assert!(clean_again.status.success(), "repair must leave a clean store");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hunt_survives_an_unwritable_trace_destination() {
    // A trace dir whose path runs through a regular file can never be
    // created (NotADirectory, even for root); the hunt must warn, disable
    // tracing, and still complete the campaign.
    let dir = scratch_dir("blocked-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("occupied");
    std::fs::write(&file, b"not a directory").unwrap();
    let out = bin()
        .args([
            "hunt", "--corpus", "6", "--budget", "4", "--trials", "1", "--workers", "2",
            "--seed", "3", "--trace-dir",
        ])
        .arg(file.join("trace"))
        .output()
        .expect("run hunt");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "hunt must not abort on a bad trace dir: {err}");
    assert!(err.contains("tracing disabled"), "expected a one-time warning, got: {err}");
    assert!(
        !err.contains("events written"),
        "must not claim a trace was written: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_report_fails_without_a_trace() {
    let dir = scratch_dir("no-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let out = bin()
        .args(["trace", "report", "--trace-dir"])
        .arg(&dir)
        .output()
        .expect("run trace report");
    assert!(!out.status.success(), "missing trace must be an error");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hunt_trace_round_trips_through_trace_report() {
    let dir = scratch_dir("hunt-trace");
    let hunt = bin()
        .args([
            "hunt", "--corpus", "12", "--budget", "10", "--trials", "2", "--workers", "2",
            "--seed", "3", "--trace-dir",
        ])
        .arg(&dir)
        .output()
        .expect("run hunt");
    assert!(
        hunt.status.success(),
        "hunt failed: {}",
        String::from_utf8_lossy(&hunt.stderr)
    );

    // Every emitted line must schema-parse as a trace event.
    let raw = std::fs::read_to_string(dir.join("trace.jsonl")).expect("trace written");
    let mut kinds = std::collections::BTreeSet::new();
    for (n, line) in raw.lines().enumerate() {
        let ev = sb_obs::Event::parse_line(line)
            .unwrap_or_else(|e| panic!("line {}: {e}: {line}", n + 1));
        kinds.insert(ev.kind());
    }
    for expected in ["span_start", "span_end", "count", "job", "summary"] {
        assert!(kinds.contains(expected), "no {expected} event in trace; kinds: {kinds:?}");
    }

    // The reconstruction must agree with the run's own summary record,
    // which `hunt` emitted from its authoritative CampaignReport.
    let report = bin()
        .args(["trace", "report", "--trace-dir"])
        .arg(&dir)
        .output()
        .expect("run trace report");
    let text = stdout(&report);
    assert!(
        report.status.success(),
        "trace report exited nonzero:\n{text}\n{}",
        String::from_utf8_lossy(&report.stderr)
    );
    assert!(text.contains("verification: OK"), "unexpected report:\n{text}");
    assert!(text.contains("funnel:"), "missing funnel section:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}
