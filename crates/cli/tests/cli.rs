//! End-to-end CLI tests driving the built `snowboard-cli` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snowboard-cli"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sb-cli-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn store_stats_prints_zero_hit_rate_for_zero_lookups() {
    // A freshly created store has recorded no profile lookups; the hit rate
    // must print as 0.0%, not as a vacuous 100% or a special-cased message.
    let dir = scratch_dir("fresh-store");
    let out = bin()
        .args(["store", "stats", "--store"])
        .arg(&dir)
        .output()
        .expect("run store stats");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(
        text.contains("profile-hit-rate 0.0% (0/0)"),
        "expected explicit 0.0% for 0/0, got:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_report_fails_without_a_trace() {
    let dir = scratch_dir("no-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let out = bin()
        .args(["trace", "report", "--trace-dir"])
        .arg(&dir)
        .output()
        .expect("run trace report");
    assert!(!out.status.success(), "missing trace must be an error");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hunt_trace_round_trips_through_trace_report() {
    let dir = scratch_dir("hunt-trace");
    let hunt = bin()
        .args([
            "hunt", "--corpus", "12", "--budget", "10", "--trials", "2", "--workers", "2",
            "--seed", "3", "--trace-dir",
        ])
        .arg(&dir)
        .output()
        .expect("run hunt");
    assert!(
        hunt.status.success(),
        "hunt failed: {}",
        String::from_utf8_lossy(&hunt.stderr)
    );

    // Every emitted line must schema-parse as a trace event.
    let raw = std::fs::read_to_string(dir.join("trace.jsonl")).expect("trace written");
    let mut kinds = std::collections::BTreeSet::new();
    for (n, line) in raw.lines().enumerate() {
        let ev = sb_obs::Event::parse_line(line)
            .unwrap_or_else(|e| panic!("line {}: {e}: {line}", n + 1));
        kinds.insert(ev.kind());
    }
    for expected in ["span_start", "span_end", "count", "job", "summary"] {
        assert!(kinds.contains(expected), "no {expected} event in trace; kinds: {kinds:?}");
    }

    // The reconstruction must agree with the run's own summary record,
    // which `hunt` emitted from its authoritative CampaignReport.
    let report = bin()
        .args(["trace", "report", "--trace-dir"])
        .arg(&dir)
        .output()
        .expect("run trace report");
    let text = stdout(&report);
    assert!(
        report.status.success(),
        "trace report exited nonzero:\n{text}\n{}",
        String::from_utf8_lossy(&report.stderr)
    );
    assert!(text.contains("verification: OK"), "unexpected report:\n{text}");
    assert!(text.contains("funnel:"), "missing funnel section:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}
