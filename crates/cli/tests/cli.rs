//! End-to-end CLI tests driving the built `snowboard-cli` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snowboard-cli"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sb-cli-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// An empty-but-valid store: what `Store::open` + `flush` leaves behind
/// before any profiles are inserted.
fn write_fresh_store(dir: &std::path::Path) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(
        dir.join("manifest.json"),
        r#"{"version":1,"next_segment":0,"last_hits":0,"last_misses":0,"profiles":{},"pmcs":[]}"#,
    )
    .unwrap();
}

#[test]
fn store_stats_prints_zero_hit_rate_for_zero_lookups() {
    // A freshly created store has recorded no profile lookups; the hit rate
    // must print as 0.0%, not as a vacuous 100% or a special-cased message.
    let dir = scratch_dir("fresh-store");
    write_fresh_store(&dir);
    let out = bin()
        .args(["store", "stats", "--store"])
        .arg(&dir)
        .output()
        .expect("run store stats");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(
        text.contains("profile-hit-rate 0.0% (0/0)"),
        "expected explicit 0.0% for 0/0, got:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_commands_reject_a_missing_or_empty_dir() {
    // `Store::open` creates directories as a side effect; the inspection
    // commands must not turn a typo'd path into a fresh store — they print
    // one friendly line on stderr and exit nonzero.
    let missing = scratch_dir("no-such-store");
    for sub in ["stats", "fsck", "repair"] {
        let out = bin()
            .args(["store", sub, "--store"])
            .arg(&missing)
            .output()
            .expect("run store subcommand");
        assert!(!out.status.success(), "store {sub} on a missing dir must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("does not exist"),
            "store {sub}: expected a friendly error, got: {err}"
        );
        assert!(!missing.exists(), "store {sub} must not create the directory");
    }

    // An existing directory that is not a store (no manifest) is also an
    // error, not an empty report.
    let empty = scratch_dir("empty-not-a-store");
    std::fs::create_dir_all(&empty).unwrap();
    let out = bin()
        .args(["store", "stats", "--store"])
        .arg(&empty)
        .output()
        .expect("run store stats");
    assert!(!out.status.success(), "empty dir is not a store");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a store"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn store_fsck_and_repair_round_trip() {
    let dir = scratch_dir("fsck-repair");
    write_fresh_store(&dir);
    let clean = bin()
        .args(["store", "fsck", "--store"])
        .arg(&dir)
        .output()
        .expect("run fsck");
    assert!(clean.status.success(), "fresh store must fsck clean");
    assert!(stdout(&clean).contains("store is clean"), "{}", stdout(&clean));

    // A manifest entry pointing at a segment that no longer exists: fsck
    // reports it and exits nonzero; repair drops it; fsck is clean again.
    std::fs::write(
        dir.join("manifest.json"),
        r#"{"version":1,"next_segment":1,"last_hits":0,"last_misses":0,"profiles":{"42":{"status":"ok","segment":0,"offset":8,"len":5}},"pmcs":[]}"#,
    )
    .unwrap();
    let dirty = bin()
        .args(["store", "fsck", "--store"])
        .arg(&dir)
        .output()
        .expect("run fsck");
    assert!(!dirty.status.success(), "damage must make fsck exit nonzero");
    assert!(stdout(&dirty).contains("store is dirty"), "{}", stdout(&dirty));

    let repair = bin()
        .args(["store", "repair", "--store"])
        .arg(&dir)
        .output()
        .expect("run repair");
    assert!(repair.status.success(), "stderr: {}", String::from_utf8_lossy(&repair.stderr));
    assert!(stdout(&repair).contains("dropped 1 profile record(s)"), "{}", stdout(&repair));

    let clean_again = bin()
        .args(["store", "fsck", "--store"])
        .arg(&dir)
        .output()
        .expect("run fsck");
    assert!(clean_again.status.success(), "repair must leave a clean store");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hunt_survives_an_unwritable_trace_destination() {
    // A trace dir whose path runs through a regular file can never be
    // created (NotADirectory, even for root); the hunt must warn, disable
    // tracing, and still complete the campaign.
    let dir = scratch_dir("blocked-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("occupied");
    std::fs::write(&file, b"not a directory").unwrap();
    let out = bin()
        .args([
            "hunt", "--corpus", "6", "--budget", "4", "--trials", "1", "--workers", "2",
            "--seed", "3", "--trace-dir",
        ])
        .arg(file.join("trace"))
        .output()
        .expect("run hunt");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "hunt must not abort on a bad trace dir: {err}");
    assert!(err.contains("tracing disabled"), "expected a one-time warning, got: {err}");
    assert!(
        !err.contains("events written"),
        "must not claim a trace was written: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_report_fails_without_a_trace() {
    let dir = scratch_dir("no-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let out = bin()
        .args(["trace", "report", "--trace-dir"])
        .arg(&dir)
        .output()
        .expect("run trace report");
    assert!(!out.status.success(), "missing trace must be an error");
    std::fs::remove_dir_all(&dir).ok();
}

/// A small, fast hunt configuration shared by the supervision tests.
/// `seed` varies per test so concurrent tests can tell their worker
/// processes apart in /proc.
fn small_hunt(seed: &str) -> Vec<String> {
    [
        "hunt", "--corpus", "12", "--budget", "10", "--trials", "2", "--workers", "2", "--seed",
        seed, "--heartbeat-ms", "30000",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

#[test]
fn supervised_hunt_matches_the_in_process_run_bit_for_bit() {
    // The whole point of the supervised mode: N worker processes, each
    // running a deterministic shard with the same per-job seeds, must merge
    // into exactly the report a single-process run produces.
    let clean = bin().args(small_hunt("3")).output().expect("run hunt");
    assert!(clean.status.success(), "stderr: {}", String::from_utf8_lossy(&clean.stderr));
    let sup = bin()
        .args(small_hunt("3"))
        .arg("--supervise")
        .output()
        .expect("run supervised hunt");
    assert!(sup.status.success(), "stderr: {}", String::from_utf8_lossy(&sup.stderr));
    assert_eq!(stdout(&clean), stdout(&sup), "supervised stdout diverged");
    let err = String::from_utf8_lossy(&sup.stderr);
    assert!(err.contains("[supervise]"), "missing supervise summary: {err}");
}

#[test]
fn supervised_hunt_survives_a_worker_sigkill() {
    use std::time::{Duration, Instant};
    let clean = bin().args(small_hunt("11")).output().expect("run hunt");
    assert!(clean.status.success());

    let sup = bin()
        .args(small_hunt("11"))
        .arg("--supervise")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn supervised hunt");

    // Find one of our worker processes (cmdline has --worker-shard and our
    // seed) and SIGKILL it, simulating an external OOM kill. Best effort:
    // if the campaign finishes before we catch a worker, the diff below
    // still validates the run.
    let deadline = Instant::now() + Duration::from_secs(30);
    'hunt: while Instant::now() < deadline {
        for entry in std::fs::read_dir("/proc").expect("read /proc").flatten() {
            let name = entry.file_name();
            let Some(pid) = name.to_str().filter(|s| s.bytes().all(|b| b.is_ascii_digit()))
            else {
                continue;
            };
            let Ok(raw) = std::fs::read(entry.path().join("cmdline")) else { continue };
            let args: Vec<&str> = raw
                .split(|&b| b == 0)
                .filter_map(|a| std::str::from_utf8(a).ok())
                .collect();
            let ours = args.windows(2).any(|w| w == ["--seed", "11"]);
            if ours && args.contains(&"--worker-shard") {
                let _ = std::process::Command::new("kill").args(["-9", pid]).status();
                break 'hunt;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let out = sup.wait_with_output().expect("await supervised hunt");
    assert!(
        out.status.success(),
        "killed run must still succeed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The respawned worker resumed from the supervisor's checkpoint and
    // reran the in-flight job with identical seeds: bit-identical output.
    assert_eq!(stdout(&clean), stdout(&out), "post-kill report diverged from the clean run");
}

#[test]
fn supervised_stop_file_checkpoints_then_resumes() {
    let dir = scratch_dir("stop-file");
    std::fs::create_dir_all(&dir).unwrap();
    let stop = dir.join("stop");
    let ckpt = dir.join("ckpt.json");
    std::fs::write(&stop, b"").unwrap();

    // With the stop file already present, the run must come down gracefully
    // before testing anything, leaving a resumable checkpoint behind.
    let stopped = bin()
        .args(small_hunt("7"))
        .args(["--supervise", "--stop-file"])
        .arg(&stop)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .expect("run stoppable hunt");
    assert!(
        stopped.status.success(),
        "graceful stop is exit 0; stderr: {}",
        String::from_utf8_lossy(&stopped.stderr)
    );
    let err = String::from_utf8_lossy(&stopped.stderr);
    assert!(err.contains("stopped by stop file"), "stderr: {err}");
    assert!(ckpt.is_file(), "stop must leave the checkpoint behind");

    // Resuming without the stop file finishes the campaign and matches a
    // clean single-process run exactly.
    std::fs::remove_file(&stop).unwrap();
    let resumed = bin()
        .args(small_hunt("7"))
        .args(["--supervise", "--resume"])
        .arg(&ckpt)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .expect("resume hunt");
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let clean = bin().args(small_hunt("7")).output().expect("run hunt");
    assert_eq!(stdout(&clean), stdout(&resumed), "resumed run diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exit_codes_are_pinned() {
    // 0: success.
    let help = bin().arg("help").output().expect("run help");
    assert_eq!(help.status.code(), Some(0));
    // 2: usage error.
    let usage = bin().args(["hunt", "--frobnicate"]).output().expect("run bad flag");
    assert_eq!(usage.status.code(), Some(2), "usage errors exit 2");
    // 1: runtime failure (no trace to report on).
    let dir = scratch_dir("exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let runtime = bin()
        .args(["trace", "report", "--trace-dir"])
        .arg(&dir)
        .output()
        .expect("run trace report");
    assert_eq!(runtime.status.code(), Some(1), "runtime failures exit 1");
    // 3: hunt completed, but a job was quarantined (injected panic).
    let quarantined = bin()
        .args([
            "hunt", "--corpus", "6", "--budget", "4", "--trials", "1", "--workers", "2",
            "--seed", "3", "--fault-plan", "panic=1",
        ])
        .output()
        .expect("run faulted hunt");
    assert_eq!(
        quarantined.status.code(),
        Some(3),
        "quarantines exit 3; stderr: {}",
        String::from_utf8_lossy(&quarantined.stderr)
    );
    assert!(
        stdout(&quarantined).contains("quarantined 1 job(s)"),
        "stdout: {}",
        stdout(&quarantined)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervised_crash_injection_quarantines_and_exits_3() {
    // A worker that aborts on job 2 burns the crash budget; the supervisor
    // quarantines exactly that job, the rest of the campaign completes, and
    // the exit code says "finished with quarantines".
    let out = bin()
        .args(small_hunt("5"))
        .args(["--supervise", "--fault-plan", "abort=2"])
        .output()
        .expect("run aborting hunt");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("quarantined 1 job(s)"), "stdout: {text}");
    assert!(text.contains("crash: 1"), "quarantine must be crash-kinded: {text}");
    assert!(
        text.contains("worker process died while job 2 was in flight"),
        "quarantine must name the in-flight job: {text}"
    );
}

#[test]
fn hunt_trace_round_trips_through_trace_report() {
    let dir = scratch_dir("hunt-trace");
    let hunt = bin()
        .args([
            "hunt", "--corpus", "12", "--budget", "10", "--trials", "2", "--workers", "2",
            "--seed", "3", "--trace-dir",
        ])
        .arg(&dir)
        .output()
        .expect("run hunt");
    assert!(
        hunt.status.success(),
        "hunt failed: {}",
        String::from_utf8_lossy(&hunt.stderr)
    );

    // Every emitted line must schema-parse as a trace event.
    let raw = std::fs::read_to_string(dir.join("trace.jsonl")).expect("trace written");
    let mut kinds = std::collections::BTreeSet::new();
    for (n, line) in raw.lines().enumerate() {
        let ev = sb_obs::Event::parse_line(line)
            .unwrap_or_else(|e| panic!("line {}: {e}: {line}", n + 1));
        kinds.insert(ev.kind());
    }
    for expected in ["span_start", "span_end", "count", "job", "summary"] {
        assert!(kinds.contains(expected), "no {expected} event in trace; kinds: {kinds:?}");
    }

    // The reconstruction must agree with the run's own summary record,
    // which `hunt` emitted from its authoritative CampaignReport.
    let report = bin()
        .args(["trace", "report", "--trace-dir"])
        .arg(&dir)
        .output()
        .expect("run trace report");
    let text = stdout(&report);
    assert!(
        report.status.success(),
        "trace report exited nonzero:\n{text}\n{}",
        String::from_utf8_lossy(&report.stderr)
    );
    assert!(text.contains("verification: OK"), "unexpected report:\n{text}");
    assert!(text.contains("funnel:"), "missing funnel section:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Fleet mode (`hunt serve` / `hunt join`)
// ---------------------------------------------------------------------------

/// Spawns `hunt serve` on an ephemeral port with `extra` hunt flags and
/// returns the child plus the address it actually bound (parsed from the
/// `[fleet] listening on ...` stderr line). A thread keeps draining stderr
/// into a buffer so the child can never block on a full pipe.
fn spawn_serve(
    tail: &[String],
    extra: &[&str],
) -> (
    std::process::Child,
    String,
    std::sync::Arc<std::sync::Mutex<String>>,
) {
    use std::io::BufRead;
    let mut child = bin()
        .args(["hunt", "serve", "--listen", "127.0.0.1:0"])
        .args(tail)
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn hunt serve");
    let mut reader = std::io::BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read serve stderr") > 0 {
        if let Some(rest) = line.trim().strip_prefix("[fleet] listening on ") {
            addr = Some(rest.to_owned());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("serve never printed its listen address");
    let buf = std::sync::Arc::new(std::sync::Mutex::new(String::new()));
    let drain = buf.clone();
    std::thread::spawn(move || {
        use std::io::Read;
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        drain.lock().unwrap().push_str(&rest);
    });
    (child, addr, buf)
}

/// The hunt flags shared by the coordinator and its workers; the campaign
/// parameters must match or the handshake rejects the worker.
fn fleet_tail(seed: &str) -> Vec<String> {
    small_hunt(seed)[1..].to_vec()
}

#[test]
fn fleet_hunt_matches_the_in_process_run_bit_for_bit() {
    // The acceptance bar for fleet mode: a coordinator plus two TCP worker
    // processes must print exactly the report a single-process run prints.
    let clean = bin().args(small_hunt("17")).output().expect("run hunt");
    assert!(clean.status.success(), "stderr: {}", String::from_utf8_lossy(&clean.stderr));

    let (serve, addr, serve_err) = spawn_serve(&fleet_tail("17"), &["--batch", "2"]);
    let workers: Vec<_> = (0..2)
        .map(|_| {
            bin()
                .args(["hunt", "join", &addr])
                .args(fleet_tail("17"))
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn()
                .expect("spawn hunt join")
        })
        .collect();
    for w in workers {
        let out = w.wait_with_output().expect("await worker");
        assert!(
            out.status.success(),
            "worker failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = serve.wait_with_output().expect("await serve");
    assert!(out.status.success(), "serve failed: {}", serve_err.lock().unwrap());
    assert_eq!(stdout(&clean), stdout(&out), "fleet report diverged from the clean run");
    let err = serve_err.lock().unwrap();
    assert!(err.contains("[fleet]"), "missing fleet summary: {err}");
}

#[test]
fn join_fails_fast_against_an_unreachable_coordinator() {
    // Nobody listening: bounded retries, one error line, exit 1 — no hang,
    // no panic, no usage dump.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let out = bin()
        .args(["hunt", "join", &addr, "--connect-retries", "2"])
        .args(fleet_tail("3"))
        .output()
        .expect("run hunt join");
    assert_eq!(out.status.code(), Some(1), "unreachable coordinator exits 1");
    let err = String::from_utf8_lossy(&out.stderr);
    let error_lines: Vec<&str> =
        err.lines().filter(|l| l.starts_with("error:")).collect();
    assert_eq!(error_lines.len(), 1, "exactly one error line, got: {err}");
    assert!(
        error_lines[0].contains("cannot reach coordinator")
            && error_lines[0].contains("2 attempt(s)"),
        "unexpected error line: {}",
        error_lines[0]
    );
}

#[test]
fn join_survives_a_coordinator_dying_mid_handshake() {
    // A coordinator that accepts and instantly hangs up is as good as
    // unreachable: bounded retries, one error line, exit 1.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let mut dropped = 0u32;
        while dropped < 3 {
            match listener.accept() {
                Ok((stream, _)) => {
                    drop(stream);
                    dropped += 1;
                }
                Err(_) => break,
            }
        }
    });
    let out = bin()
        .args(["hunt", "join", &addr, "--connect-retries", "3"])
        .args(fleet_tail("3"))
        .output()
        .expect("run hunt join");
    assert_eq!(out.status.code(), Some(1), "mid-handshake death exits 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot reach coordinator") && err.contains("3 attempt(s)"),
        "unexpected stderr: {err}"
    );
    server.join().unwrap();
}

#[test]
fn fleet_handshake_rejects_a_config_mismatch() {
    let dir = scratch_dir("fleet-reject");
    std::fs::create_dir_all(&dir).unwrap();
    let stop = dir.join("stop");
    let stop_flag = stop.display().to_string();
    let (serve, addr, _serve_err) =
        spawn_serve(&fleet_tail("17"), &["--stop-file", &stop_flag]);

    // Different --seed → different config fingerprint → immediate, fatal
    // rejection (no retry loop).
    let out = bin()
        .args(["hunt", "join", &addr])
        .args(fleet_tail("18"))
        .output()
        .expect("run mismatched join");
    assert_eq!(out.status.code(), Some(1), "mismatch exits 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("rejected") && err.contains("fingerprint"),
        "unexpected stderr: {err}"
    );

    std::fs::write(&stop, b"").unwrap();
    let out = serve.wait_with_output().expect("await serve");
    assert!(
        out.status.success(),
        "stopped serve must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_usage_errors_exit_2() {
    // Parse-time validation of the timing/lease knobs (for serve, join, and
    // --supervise) must reject nonsense before any socket or pipeline work.
    let cases: &[&[&str]] = &[
        &["hunt", "serve"],                                          // no --listen
        &["hunt", "serve", "--listen", "x", "--lease-ms", "0"],      // zero lease
        &["hunt", "serve", "--listen", "x", "--batch", "0"],         // zero batch
        &["hunt", "serve", "--listen", "x", "--batch", "9999"],      // absurd batch
        &["hunt", "serve", "--listen", "x", "--heartbeat-ms", "0"],  // zero heartbeat
        // Lease shorter than the worker heartbeat interval (hb/4).
        &["hunt", "serve", "--listen", "x", "--heartbeat-ms", "40000", "--lease-ms", "5000"],
        &["hunt", "join"],                                           // no address
        &["hunt", "join", "x:1", "--batch", "0"],                    // zero batch
        &["hunt", "join", "x:1", "--connect-retries", "0"],          // zero retries
        &["hunt", "join", "x:1", "--net-faults", "frob=1"],          // bad fault spec
        &["hunt", "--supervise", "--heartbeat-ms", "0"],             // supervise too
    ];
    for case in cases {
        let out = bin().args(*case).output().expect("run usage case");
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected usage exit 2 for {case:?}; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // A bad SB_NET_FAULTS spec is also a usage error, found before any
    // connection attempt.
    let out = bin()
        .args(["hunt", "join", "127.0.0.1:1"])
        .args(fleet_tail("3"))
        .env("SB_NET_FAULTS", "frob=1")
        .output()
        .expect("run env-faulted join");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
