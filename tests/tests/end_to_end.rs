//! Whole-system integration tests spanning every crate: engine → kernel →
//! fuzzing → profiling → PMC analysis → scheduling → detection → triage.

use integration::{shared_old_kernel, shared_rc_kernel};

use sb_kernel::prog::{Domain, Res};
use sb_kernel::{Program, Syscall};
use sb_vmm::sched::{RandomSched, SnowboardSched};
use sb_vmm::Executor;
use snowboard::campaign::{channel_exercised, IncidentalIndex};
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;

#[test]
fn figure1_pmc_predicted_and_exercised() {
    // The paper's core claim in miniature: the PMC predicted from
    // sequential profiles is actually exercised when the schedule puts the
    // write before the read.
    let booted = shared_rc_kernel();
    let writer = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 1 },
    ]);
    let reader = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 1 },
        Syscall::Sendmsg { sock: Res(0), len: 0 },
    ]);
    let profiles = profile_corpus(booted, &[writer.clone(), reader.clone()], 2);
    let set = identify(&profiles);
    let (_, pmc) =
        snowboard::metrics::find_pmc_by_sites(&set, "list_add_rcu", "l2tp_tunnel_get")
            .expect("PMC predicted");
    // Under enough Snowboard-scheduled trials, the channel must be
    // exercised at least once (and usually quickly).
    let mut exec = Executor::new(2);
    let mut sched = SnowboardSched::new(1, pmc.hints());
    let mut exercised = false;
    for trial in 0..64 {
        sched.begin_trial(trial);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(writer.clone()),
                booted.kernel.process_job(reader.clone()),
            ],
            &mut sched,
        );
        if channel_exercised(&r.report.trace, pmc) {
            exercised = true;
            break;
        }
    }
    assert!(exercised, "predicted channel never exercised in 64 trials");
}

#[test]
fn profiles_are_reproducible_across_snapshot_restores() {
    // §4.1: reproducibility from the snapshot is what makes PMCs
    // predictive. Run the same test 5 times; the shared-access profile must
    // be byte-identical.
    let booted = shared_rc_kernel();
    let prog = Program::new(vec![
        Syscall::Msgget { key: 2 },
        Syscall::Mount,
    ]);
    let sig = |p: &snowboard::SeqProfile| {
        p.accesses
            .iter()
            .map(|a| (a.site.0, a.addr, a.len, a.value, a.kind.is_write()))
            .collect::<Vec<_>>()
    };
    let mut exec = Executor::new(1);
    let first = snowboard::profile::profile_one(&mut exec, booted, 0, &prog).expect("profile");
    for _ in 0..4 {
        let again = snowboard::profile::profile_one(&mut exec, booted, 0, &prog).expect("profile");
        assert_eq!(sig(&first), sig(&again));
    }
}

#[test]
fn deterministic_reproduction_of_a_found_bug() {
    // §6 "Bug Diagnosis and Deterministic Reproduction": once a trial
    // exposes a bug, replaying the same seed reproduces it exactly.
    let booted = shared_rc_kernel();
    let writer = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 3 },
    ]);
    let reader = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 3 },
        Syscall::Sendmsg { sock: Res(0), len: 0 },
    ]);
    let mut exec = Executor::new(2);
    // Find a panicking seed.
    let mut panicking_seed = None;
    for seed in 0..512 {
        let mut sched = RandomSched::new(seed, 0.3);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(writer.clone()),
                booted.kernel.process_job(reader.clone()),
            ],
            &mut sched,
        );
        if r.report.outcome.is_panic() {
            panicking_seed = Some((seed, r.report.console.clone()));
            break;
        }
    }
    let (seed, console) = panicking_seed.expect("some schedule must panic");
    // Replay it three times.
    for _ in 0..3 {
        let mut sched = RandomSched::new(seed, 0.3);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(writer.clone()),
                booted.kernel.process_job(reader.clone()),
            ],
            &mut sched,
        );
        assert!(r.report.outcome.is_panic());
        assert_eq!(r.report.console, console, "replay diverged");
    }
}

#[test]
fn incidental_index_covers_every_pmc_write_site() {
    let booted = shared_rc_kernel();
    let corpus = sb_fuzz::seed_programs();
    let profiles = profile_corpus(booted, &corpus, 2);
    let set = identify(&profiles);
    let _index = IncidentalIndex::build(&set);
    assert!(set.len() > 50, "seed corpus should already induce many PMCs");
}

#[test]
fn fuzz_corpus_feeds_pipeline_without_panics() {
    // Sequential tests generated by the fuzzer must never panic the
    // simulated kernel: all planted bugs are concurrency bugs.
    let booted = shared_old_kernel();
    let (corpus, _) = sb_fuzz::build_corpus(booted, 99, 50, 400);
    let mut exec = Executor::new(1);
    for (i, prog) in corpus.iter().enumerate() {
        let r = exec.run(
            booted.snapshot.clone(),
            vec![booted.kernel.process_job(prog.clone())],
            &mut sb_vmm::sched::FreeRun,
        );
        assert!(
            r.report.outcome.is_completed(),
            "sequential test {i} failed: {:?}\n{}",
            r.report.outcome,
            prog
        );
    }
}

#[test]
fn detectors_stay_quiet_on_sequential_executions() {
    // Single-threaded runs can have no data races and no concurrency
    // console errors.
    let booted = shared_rc_kernel();
    let mut exec = Executor::new(1);
    for prog in sb_fuzz::seed_programs() {
        let r = exec.run(
            booted.snapshot.clone(),
            vec![booted.kernel.process_job(prog.clone())],
            &mut sb_vmm::sched::FreeRun,
        );
        let findings = sb_detect::analyze(&r.report);
        assert!(
            findings.is_empty(),
            "sequential run of {prog} produced {findings:?}"
        );
    }
}

#[test]
fn queue_parallelism_matches_sequential_campaign_results() {
    // The distributed-queue stand-in must not change campaign outcomes:
    // workers=1 and workers=4 produce identical per-test outcomes.
    let booted = shared_rc_kernel();
    let corpus = sb_fuzz::seed_programs();
    let profiles = profile_corpus(booted, &corpus, 2);
    let set = identify(&profiles);
    let exemplars = snowboard::select::exemplars(
        &set,
        snowboard::cluster::Strategy::SInsPair,
        snowboard::select::ClusterOrder::UncommonFirst,
        1,
        &std::collections::HashSet::new(),
    );
    let run = |workers: usize| {
        let cfg = snowboard::CampaignCfg {
            seed: 9,
            trials_per_pmc: 6,
            max_tested_pmcs: 30,
            workers,
            stop_on_finding: true,
            incidental: false,
            ..snowboard::CampaignCfg::default()
        };
        let report = snowboard::campaign::run_campaign(booted, &corpus, &set, &exemplars, &cfg)
            .expect("campaign");
        report
            .outcomes
            .iter()
            .map(|o| (o.pmc, o.pair, o.trials_run, o.exercised, o.findings.len()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4));
}
