//! Fault-tolerant campaign execution: injected worker panics and hangs are
//! quarantined without aborting the campaign, transient failures are
//! retried, and a killed campaign resumes from its checkpoint to the same
//! aggregate report as an uninterrupted run.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

use integration::shared_rc_kernel;

use sb_kernel::{BootedKernel, Program};
use snowboard::campaign::run_campaign;
use snowboard::pmc::{identify, PmcId, PmcSet};
use snowboard::profile::profile_corpus;
use snowboard::{CampaignCfg, CheckpointCfg, FailureKind, FaultPlan, RetryPolicy};

const JOBS: usize = 6;

struct Fixture {
    booted: &'static BootedKernel,
    corpus: Vec<Program>,
    set: PmcSet,
    exemplars: Vec<PmcId>,
}

fn fixture() -> Fixture {
    let booted = shared_rc_kernel();
    let corpus = sb_fuzz::seed_programs();
    let profiles = profile_corpus(booted, &corpus, 2);
    let set = identify(&profiles);
    let exemplars = snowboard::select::exemplars(
        &set,
        snowboard::cluster::Strategy::SInsPair,
        snowboard::select::ClusterOrder::UncommonFirst,
        1,
        &HashSet::new(),
    );
    assert!(exemplars.len() >= JOBS, "corpus should induce enough PMCs");
    Fixture {
        booted,
        corpus,
        set,
        exemplars,
    }
}

/// A small campaign config shared by every test in this file. Backoffs are
/// shrunk so retry paths stay fast.
fn base_cfg() -> CampaignCfg {
    CampaignCfg {
        seed: 77,
        trials_per_pmc: 4,
        max_tested_pmcs: JOBS,
        workers: 2,
        stop_on_finding: true,
        incidental: false,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        },
        ..CampaignCfg::default()
    }
}

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sb-ft-{}-{name}.ckpt", std::process::id()))
}

#[test]
fn injected_panics_and_hangs_quarantine_exactly_those_jobs() {
    let fx = fixture();
    let clean = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &base_cfg())
        .expect("clean campaign");
    assert!(clean.quarantined.is_empty());
    assert_eq!(clean.tested(), JOBS);

    let faulted_cfg = CampaignCfg {
        fault_plan: FaultPlan {
            panic_jobs: [1usize].into_iter().collect(),
            hang_jobs: [3usize].into_iter().collect(),
            ..FaultPlan::default()
        },
        ..base_cfg()
    };
    let faulted = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &faulted_cfg)
        .expect("faulted campaign must still complete");

    // Exactly the injected jobs are quarantined, with the right kinds.
    let mut quarantined: Vec<(usize, FailureKind)> =
        faulted.quarantined.iter().map(|q| (q.job, q.kind)).collect();
    quarantined.sort_by_key(|(job, _)| *job);
    assert_eq!(
        quarantined,
        vec![(1, FailureKind::Panic), (3, FailureKind::Hang)]
    );
    // The panic is retryable and exhausts its budget; the hang is not.
    let by_job =
        |j: usize| faulted.quarantined.iter().find(|q| q.job == j).unwrap();
    assert_eq!(by_job(1).attempts, 3, "panics retry to exhaustion");
    assert_eq!(by_job(3).attempts, 1, "hangs are permanent");
    assert!(by_job(1).chain[0].contains("forced worker panic"));
    assert!(by_job(3).chain[0].contains("watchdog"));

    // Every non-injected job's outcome is identical to the clean run's.
    let surviving: Vec<_> = clean
        .outcomes
        .iter()
        .enumerate()
        .filter(|(job, _)| *job != 1 && *job != 3)
        .map(|(_, o)| o.clone())
        .collect();
    assert_eq!(faulted.outcomes, surviving);
}

#[test]
fn transient_failures_are_retried_to_success() {
    let fx = fixture();
    let cfg = CampaignCfg {
        fault_plan: FaultPlan {
            transient_failures: [(0usize, 2u32)].into_iter().collect(),
            ..FaultPlan::default()
        },
        ..base_cfg()
    };
    let report = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &cfg)
        .expect("campaign");
    assert!(
        report.quarantined.is_empty(),
        "transient failures within the retry budget must not quarantine: {:?}",
        report.quarantined
    );
    assert_eq!(report.tested(), JOBS);
    // Job 0 needed all three attempts; the rest completed first try.
    assert_eq!(report.outcomes[0].attempts, 3);
    assert!(report.outcomes[1..].iter().all(|o| o.attempts == 1));
}

#[test]
fn killed_campaign_resumes_from_checkpoint_to_identical_aggregates() {
    let fx = fixture();
    let path = scratch_path("resume");
    let _ = std::fs::remove_file(&path);

    let clean = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &base_cfg())
        .expect("clean campaign");

    // First half: the queue closes before job 3, simulating a mid-campaign
    // kill. Jobs 3.. are rejected (never ran) and quarantined as such.
    let first_cfg = CampaignCfg {
        checkpoint: Some(CheckpointCfg::new(path.clone())),
        fault_plan: FaultPlan {
            close_queue_before: Some(3),
            ..FaultPlan::default()
        },
        ..base_cfg()
    };
    let first = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &first_cfg)
        .expect("interrupted campaign");
    assert_eq!(first.tested(), 3, "only the pre-kill jobs completed");
    assert_eq!(first.quarantined.len(), JOBS - 3);
    assert!(first
        .quarantined
        .iter()
        .all(|q| q.kind == FailureKind::Rejected && q.attempts == 0));

    // Second half: resume from the checkpoint. Rejected jobs were not
    // persisted, so they are re-run; finished jobs are not repeated.
    let resume_cfg = CampaignCfg {
        checkpoint: Some(CheckpointCfg::new(path.clone())),
        resume_from: Some(path.clone()),
        ..base_cfg()
    };
    let resumed = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &resume_cfg)
        .expect("resumed campaign");

    assert!(resumed.quarantined.is_empty());
    assert_eq!(resumed.outcomes, clean.outcomes);
    assert_eq!(resumed.executions, clean.executions);
    assert_eq!(resumed.total_steps, clean.total_steps);
    assert_eq!(resumed.bug_ids(), clean.bug_ids());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn lenient_resume_survives_a_corrupt_checkpoint() {
    let fx = fixture();
    let path = scratch_path("lenient");
    let _ = std::fs::remove_file(&path);

    let clean = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &base_cfg())
        .expect("clean campaign");

    // Write a real checkpoint, then truncate it mid-file — the torn state a
    // kill during a non-atomic write would leave behind.
    let first_cfg = CampaignCfg {
        checkpoint: Some(CheckpointCfg::new(path.clone())),
        ..base_cfg()
    };
    run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &first_cfg).expect("campaign");
    let bytes = std::fs::read(&path).expect("checkpoint written");
    assert!(bytes.len() > 2);
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");

    // Strict resume refuses the unparseable checkpoint.
    let strict_cfg = CampaignCfg {
        resume_from: Some(path.clone()),
        ..base_cfg()
    };
    run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &strict_cfg)
        .expect_err("strict resume must reject a corrupt checkpoint");

    // Lenient resume (`--resume-or-fresh`) warns and starts fresh instead,
    // producing the same aggregates as an uninterrupted run.
    let lenient_cfg = CampaignCfg {
        resume_from: Some(path.clone()),
        resume_lenient: true,
        ..base_cfg()
    };
    let report = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &lenient_cfg)
        .expect("lenient resume must fall back to a fresh campaign");
    assert_eq!(report.outcomes, clean.outcomes);
    assert_eq!(report.executions, clean.executions);
    assert_eq!(report.bug_ids(), clean.bug_ids());

    // A missing checkpoint file is tolerated the same way.
    let _ = std::fs::remove_file(&path);
    let report = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &lenient_cfg)
        .expect("lenient resume must tolerate a missing checkpoint");
    assert_eq!(report.outcomes, clean.outcomes);
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_campaign() {
    let fx = fixture();
    let path = scratch_path("foreign");
    let _ = std::fs::remove_file(&path);

    let first_cfg = CampaignCfg {
        checkpoint: Some(CheckpointCfg::new(path.clone())),
        ..base_cfg()
    };
    run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &first_cfg)
        .expect("campaign");

    // Same checkpoint, different seed: the resume must be refused rather
    // than silently mixing two campaigns' results.
    let foreign_cfg = CampaignCfg {
        seed: base_cfg().seed + 1,
        resume_from: Some(path.clone()),
        ..base_cfg()
    };
    let err = run_campaign(fx.booted, &fx.corpus, &fx.set, &fx.exemplars, &foreign_cfg)
        .expect_err("foreign checkpoint must be rejected");
    assert!(matches!(err, snowboard::Error::ResumeMismatch { .. }));

    let _ = std::fs::remove_file(&path);
}
