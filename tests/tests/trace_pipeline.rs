//! End-to-end observability test: a traced hunt's event stream must
//! reconstruct to exactly the totals the pipeline and campaign report —
//! the same invariant `snowboard-cli trace report` enforces on JSONL files,
//! here exercised in-process through a memory sink.

use sb_kernel::KernelConfig;
use sb_obs::{Event, TraceReport, Tracer};
use snowboard::cluster::Strategy;
use snowboard::select::ClusterOrder;
use snowboard::{CampaignCfg, Pipeline, PipelineCfg};

#[test]
fn traced_hunt_reconstructs_to_report_totals() {
    let (tracer, sink) = Tracer::memory();
    let p = Pipeline::prepare(
        KernelConfig::v5_12_rc3(),
        PipelineCfg {
            seed: 7,
            corpus_target: 40,
            fuzz_budget: 400,
            workers: 2,
            tracer: tracer.clone(),
        },
    );
    let strategy = Strategy::SInsPair;
    let clusters = p.cluster_count(strategy);
    let exemplars = p.exemplars_traced(strategy, ClusterOrder::UncommonFirst, &tracer);
    let cfg = CampaignCfg {
        seed: 7,
        trials_per_pmc: 4,
        max_tested_pmcs: 40,
        workers: 2,
        stop_on_finding: true,
        incidental: true,
        tracer: tracer.clone(),
        ..CampaignCfg::default()
    };
    let report = p.campaign(&exemplars, &cfg).expect("campaign");
    tracer.emit(&Event::Summary {
        t: tracer.now_us(),
        profiles: p.profiles.len() as u64,
        shared_accesses: p.stats.shared_accesses as u64,
        pmcs: p.pmcs.len() as u64,
        clusters: clusters as u64,
        jobs: report.tested() as u64,
        trials: report.executions,
        steps: report.total_steps,
        findings: report.issues.len() as u64,
        quarantined: report.quarantined.len() as u64,
    });

    let lines = sink.lines();
    let tr = TraceReport::from_lines(lines.iter().map(String::as_str)).expect("parse trace");
    let mismatches = tr.verify();
    assert!(mismatches.is_empty(), "trace disagrees with run totals: {mismatches:?}");

    // The funnel reconstructed purely from fine-grained events must equal
    // the values the pipeline itself reports.
    let f = tr.funnel();
    assert_eq!(f.profiles, p.profiles.len() as u64);
    assert_eq!(f.shared_accesses, p.stats.shared_accesses as u64);
    assert_eq!(f.pmcs, p.pmcs.len() as u64);
    assert_eq!(f.clusters, clusters as u64);
    assert_eq!(f.jobs, report.tested() as u64);
    assert_eq!(f.trials, report.executions);

    // Scheduler decisions were observed: a hint-guided campaign with trials
    // must record preemption activity.
    assert!(
        tr.counter(sb_obs::keys::SCHED_HINT_HITS) + tr.counter(sb_obs::keys::SCHED_VOLUNTARY) > 0,
        "no scheduler decisions recorded"
    );
    // The rendered report ends in the verification verdict.
    assert!(tr.render().contains("verification: OK"));
}

#[test]
fn disabled_tracer_emits_nothing() {
    let tracer = Tracer::disabled();
    assert!(!tracer.enabled());
    tracer.count("x", 3);
    tracer.hist("y", 1);
    let _span = tracer.span("z");
    assert_eq!(tracer.now_us(), 0);
}
