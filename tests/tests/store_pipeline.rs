//! Cold/warm store runs: a warm run against the same store directory must
//! skip all profiling (100% hit rate), load the identical PMC set, and
//! produce identical campaign aggregates; corpus growth reuses the stored
//! set incrementally.

use std::path::PathBuf;

use sb_kernel::KernelConfig;
use sb_store::Store;
use snowboard::cluster::Strategy;
use snowboard::pmc::{identify, IdentifyOpts, PmcKey, PmcSet};
use snowboard::select::ClusterOrder;
use snowboard::{CampaignCfg, CampaignReport, Pipeline, PipelineCfg};

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sb-store-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_cfg(corpus_target: usize) -> PipelineCfg {
    PipelineCfg {
        seed: 7,
        corpus_target,
        fuzz_budget: 600,
        workers: 2,
        ..PipelineCfg::default()
    }
}

fn run_campaign(p: &Pipeline) -> CampaignReport {
    let exemplars = p.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
    let cfg = CampaignCfg {
        seed: 11,
        trials_per_pmc: 8,
        max_tested_pmcs: 60,
        workers: 1,
        stop_on_finding: true,
        incidental: true,
        ..CampaignCfg::default()
    };
    p.campaign(&exemplars, &cfg).expect("campaign")
}

#[test]
fn warm_run_skips_all_profiling_and_matches_cold_run() {
    let dir = store_dir("warm");
    let opts = IdentifyOpts::sharded(4, 2);

    let mut cold_store = Store::open(&dir).expect("open cold");
    let (cold, cold_stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(24), &opts, &mut cold_store)
            .expect("cold prepare");
    assert_eq!(cold_stats.profile_hits, 0, "cold run cannot hit");
    assert_eq!(cold_stats.profile_misses as usize, cold.corpus.len());
    assert!(!cold_stats.pmc_cache_hit && !cold_stats.pmc_incremental);
    assert!(cold_stats.stored_bytes > 0 && cold_stats.segments > 0);

    let mut warm_store = Store::open(&dir).expect("open warm");
    let (warm, warm_stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(24), &opts, &mut warm_store)
            .expect("warm prepare");

    // 100% profile hit rate: every lookup served from the store.
    assert_eq!(warm_stats.profile_misses, 0, "warm run re-profiled something");
    // Failed profiles count as hits too (negative caching), so hits alone
    // must cover the whole corpus.
    assert_eq!(
        warm_stats.profile_hits,
        warm.corpus.len() as u64,
        "every corpus entry must be served from the store"
    );
    assert!((warm_stats.hit_rate() - 1.0).abs() < f64::EPSILON);
    assert!(warm_stats.pmc_cache_hit, "exact corpus match must reuse the stored set");

    // Bit-identical pipeline outputs...
    assert_eq!(cold.corpus, warm.corpus);
    assert_eq!(cold.profiles, warm.profiles);
    assert_eq!(cold.pmcs, warm.pmcs, "stored PMC set must be bit-identical");

    // ...and identical campaign aggregates.
    let (a, b) = (run_campaign(&cold), run_campaign(&warm));
    assert_eq!(a.tested(), b.tested());
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.bug_ids(), b.bug_ids());
    assert_eq!(a.issues.len(), b.issues.len());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_growth_reuses_the_stored_prefix_incrementally() {
    let dir = store_dir("grow");
    let opts = IdentifyOpts::sharded(3, 2);

    let mut first = Store::open(&dir).expect("open");
    let (small, _) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(16), &opts, &mut first)
            .expect("small prepare");

    // Same seed + budget with a larger target: the kept corpus grows by
    // appending, so the stored keys are a strict prefix of the new ones.
    let mut second = Store::open(&dir).expect("reopen");
    let (grown, stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(24), &opts, &mut second)
            .expect("grown prepare");
    assert!(grown.corpus.len() > small.corpus.len(), "corpus did not grow");
    assert_eq!(&grown.corpus[..small.corpus.len()], &small.corpus[..]);
    assert!(stats.pmc_incremental, "prefix match must take the incremental path");
    assert!(!stats.pmc_cache_hit);
    assert!(
        stats.profile_hits >= small.corpus.len() as u64,
        "prefix profiles must be served from the store"
    );

    // The incrementally grown set covers the same universe as a rebuild.
    assert_eq!(
        canonical(&grown.pmcs),
        canonical(&identify(&grown.profiles)),
        "incremental set diverged from full rebuild"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_cache_forces_reprofiling_but_keeps_outputs_equal() {
    let dir = store_dir("nocache");
    let opts = IdentifyOpts::sharded(2, 2);

    let mut cold_store = Store::open(&dir).expect("open");
    let (cold, _) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(16), &opts, &mut cold_store)
            .expect("cold prepare");

    let mut bypass = Store::open(&dir).expect("reopen");
    bypass.set_read_cache(false);
    let (fresh, stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(16), &opts, &mut bypass)
            .expect("bypass prepare");
    assert_eq!(stats.profile_hits, 0, "--no-cache must not serve cached profiles");
    assert_eq!(stats.profile_misses as usize, fresh.corpus.len());
    assert_eq!(cold.profiles, fresh.profiles, "re-profiling must be deterministic");

    std::fs::remove_dir_all(&dir).ok();
}

/// Pairs retained per PMC are capped (join order decides which survive), so
/// equivalence holds only up to the cap. Mirrors `MAX_PAIRS_PER_PMC`.
const PAIR_CAP: usize = 32;

/// One PMC reduced for comparison: key, df flag, pair count, pair list.
type CanonicalPmc = (PmcKey, bool, usize, Vec<(u32, u32)>);

/// Order-independent view of a PMC set: sorted keys with sorted pair lists;
/// capped pair lists are compared by size only.
fn canonical(set: &PmcSet) -> Vec<CanonicalPmc> {
    let mut v: Vec<_> = set
        .pmcs
        .iter()
        .map(|p| {
            let mut pairs = p.pairs.clone();
            pairs.sort_unstable();
            if pairs.len() >= PAIR_CAP {
                pairs.clear();
            }
            (p.key, p.df_leader, p.pairs.len(), pairs)
        })
        .collect();
    v.sort_unstable_by_key(|(k, _, _, _)| {
        (k.w.ins.0, k.w.addr, k.w.len, k.w.value, k.r.ins.0, k.r.addr, k.r.len, k.r.value)
    });
    v
}
