//! Self-healing store under injected damage: torn writes at every byte
//! boundary, byte flips over a whole segment, missing segment files, and a
//! full pipeline run against a corrupted store — all must degrade to
//! recompute-and-heal, never to a panic, an error, or wrong data.

use std::path::{Path, PathBuf};

use sb_kernel::KernelConfig;
use sb_store::{DiskFaultPlan, PmcLookup, ProfileLookup, Store};
use sb_vmm::access::{Access, AccessKind};
use sb_vmm::site::Site;
use snowboard::pmc::{IdentifyOpts, Pmc, PmcKey, PmcSet, SideKey};
use snowboard::profile::SeqProfile;

fn scratch(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sb-dmg-{tag}-{n}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn copy_store(files: &[(String, Vec<u8>)], dir: &Path) {
    std::fs::create_dir_all(dir).expect("create dir");
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).expect("write");
    }
}

fn read_store(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let e = entry.expect("entry");
        let name = e.file_name().into_string().expect("utf-8");
        files.push((name, std::fs::read(e.path()).expect("read")));
    }
    files.sort();
    files
}

fn profile(test: u32, addr: u64) -> SeqProfile {
    SeqProfile {
        test,
        steps: 10,
        accesses: vec![Access {
            seq: 0,
            thread: 0,
            site: Site::intern("dmg:w"),
            kind: AccessKind::Write,
            addr,
            len: 8,
            value: test as u64 + 1,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        }],
    }
}

fn pmc_set() -> PmcSet {
    let side = |name: &str| SideKey {
        ins: Site::intern(name),
        addr: 0x1000,
        len: 8,
        value: 7,
    };
    PmcSet {
        pmcs: vec![Pmc {
            key: PmcKey { w: side("dmg:pmc:w"), r: side("dmg:pmc:r") },
            df_leader: false,
            pairs: vec![(0, 1)],
        }],
    }
}

const KEYS: [u64; 3] = [1, 2, 3];

/// A pristine store with three profile records and one PMC record, as raw
/// file bytes ready to copy into per-case scratch directories.
fn pristine() -> Vec<(String, Vec<u8>)> {
    let dir = scratch("pristine", 0);
    let mut st = Store::open(&dir).expect("open");
    st.insert_profiles(&[
        (KEYS[0], Some(profile(0, 0x2000))),
        (KEYS[1], Some(profile(1, 0x3000))),
        (KEYS[2], Some(profile(2, 0x4000))),
    ])
    .expect("insert");
    st.save_pmcs(&KEYS, &pmc_set()).expect("save");
    st.flush().expect("flush");
    drop(st);
    let files = read_store(&dir);
    std::fs::remove_dir_all(&dir).ok();
    files
}

fn expect_profile(st: &mut Store, key: u64, addr: u64, test: u32) {
    match st.lookup_profile(key, 7).expect("lookup") {
        ProfileLookup::Hit(p) => {
            assert_eq!(p.test, 7);
            assert_eq!(p.accesses, profile(test, addr).accesses);
        }
        other => panic!("key {key}: expected Hit, got {other:?}"),
    }
}

/// Simulated kill mid-insert: a torn write cut at *every* byte boundary of
/// a new record must leave a store that repairs to an fsck-clean state and
/// still serves every record written before the kill.
#[test]
fn torn_write_at_every_boundary_repairs_to_a_clean_store() {
    let base = pristine();

    // Measure the new record's full on-disk size once, via a clean insert.
    let full = {
        let dir = scratch("torn-measure", 0);
        copy_store(&base, &dir);
        let mut st = Store::open(&dir).expect("open");
        st.insert_profiles(&[(4, Some(profile(3, 0x5000)))]).expect("insert");
        st.flush().expect("flush");
        let grown = read_store(&dir)
            .into_iter()
            .find(|(n, _)| n.starts_with("seg-") && !base.iter().any(|(b, _)| b == n))
            .expect("insert creates a new segment");
        std::fs::remove_dir_all(&dir).ok();
        grown.1.len() as u64 - 8 // record bytes past the magic
    };
    assert!(full > 16, "record must be larger than its header");

    for cut in 0..=full {
        let dir = scratch("torn", cut as usize);
        copy_store(&base, &dir);
        {
            let mut st = Store::open(&dir).expect("open");
            st.set_fault_plan(DiskFaultPlan {
                torn_write_after: Some(cut),
                ..Default::default()
            });
            let r = st.insert_profiles(&[(4, Some(profile(3, 0x5000)))]);
            assert_eq!(r.is_err(), cut < full, "cut {cut}: fault fires iff mid-record");
        }

        // The acceptance sequence: repair, then fsck must be clean.
        sb_store::repair(&dir).expect("repair");
        let report = sb_store::fsck(&dir).expect("fsck");
        assert!(report.clean(), "cut {cut}: {:?}", report.problems);

        // Every record from before the kill is still served; the torn one
        // is a Miss (complete-but-unreferenced ones are adopted as Hits).
        let mut st = Store::open(&dir).expect("reopen");
        expect_profile(&mut st, KEYS[0], 0x2000, 0);
        expect_profile(&mut st, KEYS[1], 0x3000, 1);
        expect_profile(&mut st, KEYS[2], 0x4000, 2);
        match st.lookup_profile(4, 7).expect("lookup") {
            ProfileLookup::Hit(p) => {
                assert_eq!(cut, full, "cut {cut}: partial record must not be served");
                assert_eq!(p.accesses, profile(3, 0x5000).accesses);
            }
            ProfileLookup::Miss => assert!(cut < full),
            other => panic!("cut {cut}: unexpected {other:?}"),
        }
        assert_eq!(st.records_damaged, 0, "cut {cut}: repair left damage behind");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Flipping every single byte of the profile segment must never panic,
/// never serve wrong data, and always heal back to a store that passes
/// fsck and serves everything.
#[test]
fn every_byte_flip_heals_back_to_a_clean_store() {
    let base = pristine();
    let seg = base
        .iter()
        .find(|(n, _)| n.starts_with("seg-"))
        .expect("profile segment")
        .clone();

    for off in 0..seg.1.len() {
        let dir = scratch("flip", off);
        copy_store(&base, &dir);
        let mut mutated = seg.1.clone();
        mutated[off] ^= 0xA5;
        std::fs::write(dir.join(&seg.0), &mutated).expect("flip");

        let mut st = Store::open(&dir).expect("damaged store must open");
        let mut to_heal = Vec::new();
        for (i, (key, addr)) in
            [(KEYS[0], 0x2000u64), (KEYS[1], 0x3000), (KEYS[2], 0x4000)].iter().enumerate()
        {
            match st.lookup_profile(*key, 7).expect("lookup") {
                ProfileLookup::Hit(p) => {
                    assert_eq!(p.accesses, profile(i as u32, *addr).accesses, "offset {off}");
                }
                ProfileLookup::Damaged => to_heal.push((*key, Some(profile(i as u32, *addr)))),
                other => panic!("offset {off}, key {key}: unexpected {other:?}"),
            }
        }
        assert!(
            !to_heal.is_empty(),
            "offset {off}: every byte of the segment should protect something"
        );
        let damaged = st.records_damaged;
        assert_eq!(damaged, to_heal.len() as u64);

        // Heal: recompute (here: re-supply) the damaged profiles.
        st.insert_profiles(&to_heal).expect("heal");
        st.flush().expect("flush");
        assert_eq!(st.records_healed, damaged, "offset {off}");
        drop(st);

        // Repair clears any torn tail / dead segment the flip left behind;
        // after that the store must verify clean and serve everything.
        sb_store::repair(&dir).expect("repair");
        let report = sb_store::fsck(&dir).expect("fsck");
        assert!(report.clean(), "offset {off}: {:?}", report.problems);
        let mut st = Store::open(&dir).expect("reopen");
        expect_profile(&mut st, KEYS[0], 0x2000, 0);
        expect_profile(&mut st, KEYS[1], 0x3000, 1);
        expect_profile(&mut st, KEYS[2], 0x4000, 2);
        assert_eq!(st.records_damaged, 0, "offset {off}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A damaged PMC record degrades and heals the same way.
#[test]
fn damaged_pmc_record_heals_on_save() {
    let base = pristine();
    let pmc = base.iter().find(|(n, _)| n.starts_with("pmc-")).expect("pmc segment");
    let dir = scratch("pmcflip", 0);
    copy_store(&base, &dir);
    let mut mutated = pmc.1.clone();
    mutated[20] ^= 0xFF; // CRC word of the first record
    std::fs::write(dir.join(&pmc.0), &mutated).expect("flip");

    let mut st = Store::open(&dir).expect("open");
    assert_eq!(st.lookup_pmcs(&KEYS).expect("lookup"), PmcLookup::Damaged);
    assert_eq!(st.records_damaged, 1);
    st.save_pmcs(&KEYS, &pmc_set()).expect("heal");
    st.flush().expect("flush");
    assert_eq!(st.records_healed, 1);
    assert_eq!(st.lookup_pmcs(&KEYS).expect("lookup"), PmcLookup::Exact(pmc_set()));
    std::fs::remove_dir_all(&dir).ok();
}

fn small_cfg() -> snowboard::PipelineCfg {
    snowboard::PipelineCfg {
        seed: 7,
        corpus_target: 16,
        fuzz_budget: 600,
        workers: 2,
        ..snowboard::PipelineCfg::default()
    }
}

/// End to end: a warm pipeline run against a bit-flipped store must succeed,
/// report the damage and the heals, and produce outputs bit-identical to the
/// cold run — after which the store verifies clean again.
#[test]
fn pipeline_heals_a_flipped_store_bit_identically() {
    let dir = scratch("pipeline", 0);
    let opts = IdentifyOpts::sharded(2, 2);

    let mut cold_store = Store::open(&dir).expect("open cold");
    let (cold, cold_stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(), &opts, &mut cold_store)
            .expect("cold prepare");
    assert_eq!(cold_stats.records_damaged, 0);
    drop(cold_store);

    // One flipped byte per segment file: offset 20 is the CRC word of the
    // first record in every v2 segment.
    let mut flipped = 0;
    for (name, bytes) in read_store(&dir) {
        if !name.ends_with(".bin") {
            continue;
        }
        let mut bytes = bytes;
        bytes[20] ^= 0xFF;
        std::fs::write(dir.join(&name), &bytes).expect("flip");
        flipped += 1;
    }
    assert!(flipped >= 2, "expected profile and PMC segments");

    let mut warm_store = Store::open(&dir).expect("open warm");
    let (warm, warm_stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(), &opts, &mut warm_store)
            .expect("a damaged store must not fail preparation");
    assert!(warm_stats.records_damaged > 0, "damage must be reported");
    assert!(warm_stats.records_healed > 0, "damage must be healed");
    assert_eq!(
        warm_stats.records_healed, warm_stats.records_damaged,
        "every damaged record is rewritten by the same run"
    );

    // Bit-identical outputs despite the damage.
    assert_eq!(cold.corpus, warm.corpus);
    assert_eq!(cold.profiles, warm.profiles);
    assert_eq!(cold.pmcs, warm.pmcs);

    // The healed store verifies clean and the next run is all hits again.
    let report = sb_store::fsck(&dir).expect("fsck");
    assert!(report.clean(), "{:?}", report.problems);
    let mut third_store = Store::open(&dir).expect("open third");
    let (_, third_stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(), &opts, &mut third_store)
            .expect("third prepare");
    assert_eq!(third_stats.records_damaged, 0);
    assert_eq!(third_stats.profile_misses, 0, "healed store serves everything");

    std::fs::remove_dir_all(&dir).ok();
}

/// A missing segment file is the coarsest damage: every record in it
/// degrades to a miss, the run still completes bit-identically, and the
/// records are healed into fresh segments.
#[test]
fn pipeline_survives_a_deleted_segment_file() {
    let dir = scratch("missing", 0);
    let opts = IdentifyOpts::sharded(2, 2);

    let mut cold_store = Store::open(&dir).expect("open cold");
    let (cold, _) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(), &opts, &mut cold_store)
            .expect("cold prepare");
    drop(cold_store);

    let victim = read_store(&dir)
        .into_iter()
        .map(|(n, _)| n)
        .find(|n| n.starts_with("seg-"))
        .expect("profile segment");
    std::fs::remove_file(dir.join(&victim)).expect("remove");

    let mut warm_store = Store::open(&dir).expect("open warm");
    let (warm, warm_stats) =
        sb_store::prepare(KernelConfig::v5_12_rc3(), &small_cfg(), &opts, &mut warm_store)
            .expect("a missing segment must not fail preparation");
    assert!(warm_stats.records_damaged > 0);
    assert_eq!(warm_stats.records_healed, warm_stats.records_damaged);
    assert_eq!(cold.profiles, warm.profiles);
    assert_eq!(cold.pmcs, warm.pmcs);

    std::fs::remove_dir_all(&dir).ok();
}
