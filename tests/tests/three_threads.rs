//! Three-thread testing (§6 extension): one shared write, two reads.

use integration::shared_rc_kernel;

use sb_kernel::prog::{Domain, Res};
use sb_kernel::{Program, Syscall};
use sb_vmm::Executor;
use snowboard::multi::{shared_write_triples, test_triple};
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;

fn l2tp_corpus() -> Vec<Program> {
    vec![
        // 0: the writer (registers the tunnel).
        Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
        ]),
        // 1, 2: two readers that connect and transmit — the paper's DoS
        // scenario of many processes requesting the same tunnel id.
        Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
            Syscall::Sendmsg { sock: Res(0), len: 0 },
        ]),
        Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
            Syscall::Sendmsg { sock: Res(0), len: 7 },
        ]),
    ]
}

#[test]
fn shared_write_triples_exist_in_the_l2tp_corpus() {
    let booted = shared_rc_kernel();
    let corpus = l2tp_corpus();
    let profiles = profile_corpus(booted, &corpus, 2);
    let set = identify(&profiles);
    let triples = shared_write_triples(&set);
    assert!(
        !triples.is_empty(),
        "the tunnel publication write should pair with multiple readers"
    );
    // At least one triple involves the list-head publication.
    let has_publish = triples.iter().any(|t| {
        set.get(t.a)
            .key
            .w
            .ins
            .display_name()
            .starts_with("list_add_rcu")
    });
    assert!(has_publish, "publication triple missing");
}

#[test]
fn three_thread_campaign_exposes_the_l2tp_panic() {
    let booted = shared_rc_kernel();
    let corpus = l2tp_corpus();
    let profiles = profile_corpus(booted, &corpus, 2);
    let set = identify(&profiles);
    let triples = shared_write_triples(&set);
    let publish: Vec<_> = triples
        .iter()
        .filter(|t| {
            set.get(t.a)
                .key
                .w
                .ins
                .display_name()
                .starts_with("list_add_rcu")
        })
        .collect();
    assert!(!publish.is_empty());
    let mut exec = Executor::new(3);
    let mut found = false;
    // Each seed re-draws the (writer, reader, reader) tests from the PMC's
    // pair lists, so sweeping seeds explores the test-selection dimension.
    'outer: for t in &publish {
        for seed in 0..12u64 {
            let out = test_triple(&mut exec, booted, &corpus, &set, **t, 40 + seed, 32, true)
                .expect("triple test");
            if out
                .findings
                .iter()
                .any(|f| snowboard::triage::triage(f) == Some(12))
            {
                found = true;
                break 'outer;
            }
        }
    }
    assert!(found, "3-thread exploration should expose bug #12");
}

#[test]
fn three_thread_execution_is_deterministic() {
    let booted = shared_rc_kernel();
    let corpus = l2tp_corpus();
    let profiles = profile_corpus(booted, &corpus, 2);
    let set = identify(&profiles);
    let triples = shared_write_triples(&set);
    let t = triples[0];
    let run = || {
        let mut exec = Executor::new(3);
        let out = test_triple(&mut exec, booted, &corpus, &set, t, 77, 8, false)
            .expect("triple test");
        (out.tests, out.trials_run, out.findings.len(), out.steps)
    };
    assert_eq!(run(), run());
}
