//! Shared helpers for the cross-crate integration tests (in `tests/tests/`).

use sb_kernel::{boot, BootedKernel, KernelConfig};
use std::sync::OnceLock;

/// A lazily booted 5.12-rc3 kernel shared across tests in one process
/// (boot is deterministic, so sharing is safe and fast).
pub fn shared_rc_kernel() -> &'static BootedKernel {
    static K: OnceLock<BootedKernel> = OnceLock::new();
    K.get_or_init(|| boot(KernelConfig::v5_12_rc3()))
}

/// A lazily booted 5.3.10 kernel.
pub fn shared_old_kernel() -> &'static BootedKernel {
    static K: OnceLock<BootedKernel> = OnceLock::new();
    K.get_or_init(|| boot(KernelConfig::v5_3_10()))
}
